"""Erdős–Rényi ``G(n, m)`` generator (uniform random simple graphs)."""

from __future__ import annotations

import numpy as np

from ..csr import CSRGraph, VERTEX_DTYPE
from ..builders import from_edge_array

__all__ = ["erdos_renyi"]


def erdos_renyi(n: int, m: int, seed: int = 0) -> CSRGraph:
    """Sample a uniform simple graph with ``n`` vertices and ``m`` edges.

    Uses rejection-free oversampling: draw batches of candidate pairs,
    deduplicate, and repeat until ``m`` distinct edges are collected.
    """
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"m={m} exceeds the {max_edges} possible edges")
    rng = np.random.default_rng(seed)
    chosen: np.ndarray = np.empty(0, dtype=np.int64)
    while chosen.size < m:
        need = m - chosen.size
        batch = max(1024, int(need * 1.2))
        u = rng.integers(0, n, size=batch, dtype=VERTEX_DTYPE)
        v = rng.integers(0, n, size=batch, dtype=VERTEX_DTYPE)
        lo, hi = np.minimum(u, v), np.maximum(u, v)
        keys = lo * n + hi
        keys = keys[lo != hi]
        chosen = np.unique(np.concatenate([chosen, keys]))
        if chosen.size > m:
            # Keep a uniformly random subset of the distinct edges found.
            chosen = rng.permutation(chosen)[:m]
    edges = np.column_stack([chosen // n, chosen % n])
    return from_edge_array(edges, num_vertices=n)
