"""ROLL-style scale-free generator with controlled average degree.

The paper's robustness experiment (Table 2 / Figure 8) uses ROLL [Hadian et
al., SIGMOD'16] to build four billion-edge scale-free graphs whose average
degrees are 40, 80, 120 and 160.  ROLL is an accelerated Barabási–Albert
preferential-attachment sampler; what the experiment exercises is *only*
"scale-free topology with a chosen average degree", so we provide a
classic repeated-endpoints BA construction with an exact attachment count
``m_attach = avg_degree / 2`` per arriving vertex.
"""

from __future__ import annotations

import numpy as np

from ..csr import CSRGraph, VERTEX_DTYPE
from ..builders import from_edge_array

__all__ = ["roll_graph"]


def roll_graph(n: int, avg_degree: int, seed: int = 0) -> CSRGraph:
    """Preferential-attachment graph with ``n`` vertices and ``avg_degree``.

    ``avg_degree`` must be even (each arriving vertex attaches
    ``avg_degree / 2`` edges).  Sampling from the repeated-endpoints array
    realizes attachment probability proportional to current degree, the
    same distribution ROLL samples (ROLL's contribution is generation
    *speed* at billion-edge scale, not a different model).
    """
    if avg_degree % 2 != 0 or avg_degree < 2:
        raise ValueError("avg_degree must be a positive even integer")
    m_attach = avg_degree // 2
    if n <= m_attach:
        raise ValueError("n must exceed avg_degree / 2")
    rng = np.random.default_rng(seed)

    total_edges = m_attach * (n - m_attach)
    src = np.empty(total_edges, dtype=VERTEX_DTYPE)
    dst = np.empty(total_edges, dtype=VERTEX_DTYPE)
    # Endpoint multiset: every edge contributes both endpoints, so sampling
    # uniformly from the filled prefix is degree-proportional sampling.
    repeated = np.empty(2 * total_edges, dtype=VERTEX_DTYPE)

    # Seed clique endpoints: the first m_attach vertices, so early arrivals
    # have somewhere to attach.
    repeated[:m_attach] = np.arange(m_attach)
    filled = m_attach
    edge_pos = 0
    for u in range(m_attach, n):
        targets = repeated[rng.integers(0, filled, size=m_attach)]
        # Duplicate targets collapse in normalization; keeping the raw
        # draws preserves the BA distribution closely at these sizes.
        k = targets.size
        src[edge_pos : edge_pos + k] = u
        dst[edge_pos : edge_pos + k] = targets
        repeated[filled : filled + k] = targets
        repeated[filled + k : filled + 2 * k] = u
        filled += 2 * k
        edge_pos += k

    edges = np.column_stack([src[:edge_pos], dst[:edge_pos]])
    return from_edge_array(edges, num_vertices=n)
