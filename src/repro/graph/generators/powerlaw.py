"""Chung–Lu random graphs with power-law expected degrees.

The Chung–Lu model connects ``u`` and ``v`` with probability proportional to
``w[u] * w[v]``.  We use the fast "edge-sampling" construction: draw both
endpoints of each candidate edge independently with probability proportional
to the weights, then deduplicate.  The resulting degree sequence follows the
weights in expectation, which is all the evaluation needs (degree-skew
control for the real-world stand-ins).
"""

from __future__ import annotations

import numpy as np

from ..csr import CSRGraph, VERTEX_DTYPE
from ..builders import from_edge_array

__all__ = ["powerlaw_weights", "chung_lu"]


def powerlaw_weights(
    n: int, gamma: float, min_weight: float = 1.0, max_weight: float | None = None
) -> np.ndarray:
    """Deterministic power-law weight sequence ``w[i] ∝ (i + 1)^(-1/(γ-1))``.

    ``γ`` is the exponent of the target degree distribution
    ``P(d) ∝ d^(-γ)``; smaller γ means heavier tails.  ``max_weight`` caps
    hub weights (used for the homogeneous friendster stand-in).
    """
    if gamma <= 1.0:
        raise ValueError("gamma must exceed 1")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = min_weight * (n / ranks) ** (1.0 / (gamma - 1.0))
    if max_weight is not None:
        np.minimum(weights, max_weight, out=weights)
    return weights


def chung_lu(
    weights: np.ndarray, target_edges: int, seed: int = 0
) -> CSRGraph:
    """Sample a Chung–Lu graph with the given weights and ~``target_edges``.

    Shuffles the weight-to-vertex assignment so that hub vertex ids are
    spread over the id space (real SNAP graphs are not id-sorted by degree,
    and the ppSCAN task scheduler's behaviour depends on that).
    """
    weights = np.asarray(weights, dtype=np.float64)
    n = weights.size
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    p = weights[np.argsort(perm)]  # weight of vertex id i
    p = p / p.sum()

    chosen: np.ndarray = np.empty(0, dtype=np.int64)
    attempts = 0
    while chosen.size < target_edges and attempts < 12:
        need = target_edges - chosen.size
        batch = max(2048, int(need * 1.3))
        u = rng.choice(n, size=batch, p=p).astype(VERTEX_DTYPE)
        v = rng.choice(n, size=batch, p=p).astype(VERTEX_DTYPE)
        lo, hi = np.minimum(u, v), np.maximum(u, v)
        keys = (lo * n + hi)[lo != hi]
        chosen = np.unique(np.concatenate([chosen, keys]))
        attempts += 1
    if chosen.size > target_edges:
        chosen = rng.permutation(chosen)[:target_edges]
    edges = np.column_stack([chosen // n, chosen % n])
    return from_edge_array(edges, num_vertices=n)
