"""Vectorized per-vertex sketch construction from the CSR arrays.

Two sketches exist per vertex, built in whole-graph NumPy passes (no
per-vertex Python loop):

* a **Bloom bitset** of ``params.bits`` bits (one hash function): bit
  ``h(w) mod bits`` is set for every neighbor ``w``.  Built *eagerly* —
  a single unbuffered scatter-OR over the arc array, a few milliseconds
  per million arcs;
* a **k-minimum-values (KMV)** sketch: the ``k`` smallest neighbor
  hashes, sorted ascending and padded with a sentinel.  Built *lazily*,
  per vertex subset, on first demand: the staged classifier
  (:mod:`repro.sketch.estimate`) resolves the vast majority of arcs
  from the Bloom stage alone, so paying an O(m log m) sort for KMV rows
  that are never read would often dominate the whole sketch budget.

Both consume the *same* 64-bit hash of the neighbor vertex id, produced
by the splitmix64 finalizer.  The finalizer is bijective on uint64, so
``h(w) == h(x)  ⇔  w == x`` — which is what makes the KMV match count a
*certificate*: every value shared by two KMV sketches corresponds to one
real common neighbor (see :mod:`repro.sketch.estimate`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .config import SketchParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.csr import CSRGraph

__all__ = ["VertexSketches", "build_sketches", "SENTINEL", "hash_vertices"]

#: KMV padding value for vertices with degree < k.  Real hashes are
#: guaranteed distinct from it (re-mixed at build time if needed), so a
#: sentinel never counts as a sketch match.
SENTINEL = np.uint64(0xFFFFFFFFFFFFFFFF)

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer — a bijection on uint64."""
    with np.errstate(over="ignore"):
        x = (x + _GOLDEN).astype(np.uint64)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return x ^ (x >> np.uint64(31))


def hash_vertices(num_vertices: int, seed: int) -> np.ndarray:
    """One 64-bit hash per vertex id, distinct from :data:`SENTINEL`.

    ``id + seed·golden`` is bijective in ``id`` for a fixed seed, and
    splitmix64 is bijective, so distinct ids always get distinct hashes.
    In the astronomically unlikely event a hash collides with the KMV
    sentinel, the whole graph is deterministically re-mixed with the
    next seed (decisions stay reproducible: the rehash depends only on
    ``(num_vertices, seed)``).
    """
    ids = np.arange(num_vertices, dtype=np.uint64)
    mix = np.uint64(seed)
    with np.errstate(over="ignore"):
        while True:
            hv = _splitmix64(ids + mix * _GOLDEN)
            if not np.any(hv == SENTINEL):  # pragma: no branch
                return hv
            mix = mix + np.uint64(1)  # pragma: no cover - p ≈ n/2^64


class VertexSketches:
    """Per-vertex Bloom + KMV sketches for one ``(graph, params)`` pair.

    The Bloom side (``bloom``, ``bloom_pop``) is materialized at
    construction.  The KMV side is materialized per vertex subset by
    :meth:`ensure_kmv`; reading :attr:`kmv` builds every remaining row
    first, so external consumers always observe the complete array.
    Instances hold references to the owning graph's CSR arrays (cheap:
    no copies) and are session-memoization objects — they are never
    serialized (see ``SimilarityStore.put_sketches``).
    """

    def __init__(
        self,
        params: SketchParams,
        bloom: np.ndarray,
        bloom_pop: np.ndarray,
        degrees: np.ndarray,
        hv: np.ndarray,
        offsets: np.ndarray,
        dst: np.ndarray,
    ) -> None:
        self.params = params
        #: (n, words) uint64 Bloom bitsets.
        self.bloom = bloom
        #: (n,) int64 popcounts of each Bloom bitset.
        self.bloom_pop = bloom_pop
        #: (n,) int64 vertex degrees (open neighborhoods).
        self.degrees = degrees
        self._hv = hv
        self._offsets = offsets
        self._dst = dst
        self._kmv: np.ndarray | None = None
        self._kmv_built: np.ndarray | None = None

    @property
    def num_vertices(self) -> int:
        return self.degrees.size

    @property
    def kmv(self) -> np.ndarray:
        """(n, k) uint64 KMV sketches, ascending, sentinel-padded.

        Accessing the attribute materializes every not-yet-built row.
        """
        return self.ensure_kmv()

    @property
    def kmv_len(self) -> np.ndarray:
        """(n,) number of real (non-sentinel) KMV values = min(deg, k)."""
        return np.minimum(self.degrees, self.params.k)

    def ensure_kmv(self, vertices: np.ndarray | None = None) -> np.ndarray:
        """Materialize the KMV rows of ``vertices`` (all when ``None``).

        Rows are built at most once; repeated calls with overlapping
        subsets only pay for the not-yet-built remainder.  Each batch
        sorts hashes segment-by-segment with ONE flat sort of a packed
        (segment, hash-prefix) key — cheaper than a two-key lexsort.
        Truncating the hash to its top bits only blurs the order of
        prefix-tied values, so the selected k values may differ from the
        true k minima in (astronomically rare) tie cases; every selected
        value is still a real neighbor hash, which is all the matching
        certificate requires.  A final k-wide row sort restores exact
        ascending order for the estimators.
        """
        n = self.degrees.size
        k = self.params.k
        if self._kmv is None:
            self._kmv = np.full((n, k), SENTINEL, dtype=np.uint64)
            self._kmv_built = np.zeros(n, dtype=bool)
        if vertices is None:
            need = np.flatnonzero(~self._kmv_built)
        else:
            vertices = np.unique(np.asarray(vertices, dtype=np.int64))
            need = vertices[~self._kmv_built[vertices]]
        if need.size == 0:
            return self._kmv
        deg = self.degrees[need]
        total = int(deg.sum())
        if total:
            starts = self._offsets[need].astype(np.int64, copy=False)
            seg_off = np.zeros(need.size, dtype=np.int64)
            np.cumsum(deg[:-1], out=seg_off[1:])
            pos = np.arange(total, dtype=np.int64) - np.repeat(seg_off, deg)
            harc = self._hv[self._dst[np.repeat(starts, deg) + pos]]
            seg = np.repeat(np.arange(need.size, dtype=np.int64), deg)
            shift = np.uint64(max(1, int(max(need.size - 1, 1)).bit_length()))
            pack = (seg.astype(np.uint64) << (np.uint64(64) - shift)) | (
                harc >> shift
            )
            order = np.argsort(pack)
            keep = pos < k  # pos doubles as the within-segment sorted rank
            self._kmv[need[seg[keep]], pos[keep]] = harc[order][keep]
            rows = self._kmv[need]
            rows.sort(axis=1)
            self._kmv[need] = rows
        self._kmv_built[need] = True
        return self._kmv

    def nbytes(self) -> int:
        """Approximate memory footprint of the materialized arrays."""
        return (
            self.bloom.nbytes
            + self.bloom_pop.nbytes
            + (self._kmv.nbytes if self._kmv is not None else 0)
            + self.degrees.nbytes
            + self._hv.nbytes
        )


def build_sketches(graph: "CSRGraph", params: SketchParams) -> VertexSketches:
    """Build the Bloom sketches eagerly; arm the KMV side for lazy build."""
    n = graph.num_vertices
    words = params.words
    degrees = graph.degrees.astype(np.int64, copy=False)
    offsets = graph.offsets.astype(np.int64, copy=False)
    if n == 0:
        zero = np.zeros(0, dtype=np.int64)
        return VertexSketches(
            params,
            np.zeros((0, words), dtype=np.uint64),
            zero,
            degrees,
            np.zeros(0, dtype=np.uint64),
            offsets,
            graph.dst,
        )
    hv = hash_vertices(n, params.seed)
    m = graph.num_arcs

    # Bloom: one unbuffered scatter-OR over all arcs — OR is idempotent,
    # so colliding (row, word) pairs need no grouping pass at all.
    bloom = np.zeros((n, words), dtype=np.uint64)
    if m:
        src = graph.arc_source()
        harc = hv[graph.dst]
        bit = (harc & np.uint64(params.bits - 1)).astype(np.int64)
        word = bit >> 6
        value = np.uint64(1) << (bit & 63).astype(np.uint64)
        keys = src.astype(np.int64) * words + word
        np.bitwise_or.at(bloom.reshape(-1), keys, value)
    bloom_pop = np.bitwise_count(bloom).sum(axis=1).astype(np.int64)
    return VertexSketches(
        params, bloom, bloom_pop, degrees, hv, offsets, graph.dst
    )
