"""Configuration for the sketch-based approximate similarity backend.

:class:`SketchParams` is deliberately dependency-free (stdlib only) so
``repro.options`` can import it without pulling NumPy or the graph layer
into the configuration module's import graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["SketchParams", "DEFAULT_BITS", "DEFAULT_K", "DEFAULT_SEED"]

#: Default Bloom-bitset width per vertex (bits; power of two, >= 64).
DEFAULT_BITS = 256
#: Default k-minimum-values sketch size per vertex.
DEFAULT_K = 32
#: Default hash seed.
DEFAULT_SEED = 1


@dataclass(frozen=True)
class SketchParams:
    """Per-vertex sketch configuration for approximate CompSim.

    ``bits``
        Bloom-bitset width per vertex.  Must be a power of two and a
        multiple of 64 (the bitset is stored as ``bits // 64`` uint64
        words and hashed with a mask, not a modulo).
    ``k``
        k-minimum-values (KMV / bottom-k MinHash) sketch size.  Vertices
        with degree ≤ ``k`` carry their *complete* hashed neighborhood,
        which makes sketch intersections between two such vertices exact.
    ``error``
        Width of the uncertainty band around the ε decision boundary, as
        a two-sided miss probability in ``[0, 1)``.  ``0.0`` selects the
        conservative mode: only arcs *certified* by deterministic bounds
        are decided from sketches, everything else falls back to the
        exact intersector, and the clustering is bit-identical to exact
        mode.  Positive values accept estimates whose distance from the
        boundary exceeds ``z · σ`` with ``z = sqrt(2·ln(2/error))`` —
        larger ``error`` means a narrower band, fewer exact fallbacks,
        and more approximation.
    ``gate``
        Degree gate of the cost model: an arc is sketch-classified only
        when ``min(d(u), d(v)) >= gate``.  Below the gate the exact
        kernel touches at most ``min(d(u), d(v))`` neighborhood elements
        — cheaper than gathering two Bloom bitsets — so sketching those
        arcs *loses* time even when it decides them.  ``None`` (the
        default) derives the break-even point from the bitset width as
        ``8 · words``; ``0`` disables the gate and classifies every arc.
    ``seed``
        Seed mixed into the 64-bit vertex hash.
    """

    bits: int = DEFAULT_BITS
    k: int = DEFAULT_K
    error: float = 0.0
    gate: int | None = None
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.bits < 64 or self.bits & (self.bits - 1):
            raise ValueError(
                f"bits must be a power of two >= 64, got {self.bits}"
            )
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if not (0.0 <= self.error < 1.0):
            raise ValueError(
                f"error must be in [0, 1), got {self.error}"
            )
        if self.gate is not None and self.gate < 0:
            raise ValueError(f"gate must be >= 0, got {self.gate}")
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")

    @property
    def words(self) -> int:
        """Bloom bitset width in uint64 words."""
        return self.bits // 64

    @property
    def effective_gate(self) -> int:
        """Resolved degree gate (``8 · words`` when ``gate is None``)."""
        if self.gate is not None:
            return self.gate
        return 8 * self.words

    @property
    def conservative(self) -> bool:
        """True when only certified decisions are taken from sketches."""
        return self.error == 0.0

    @property
    def z_score(self) -> float:
        """Half-width of the fallback band in σ units (∞ when exact)."""
        if self.error == 0.0:
            return math.inf
        return math.sqrt(2.0 * math.log(2.0 / self.error))

    def key(self) -> str:
        """Stable identity string (sketch memoization, checkpoint binds)."""
        return (
            f"b{self.bits}.k{self.k}.e{self.error!r}"
            f".g{self.effective_gate}.s{self.seed}"
        )
