"""Batch arc classification from per-vertex sketches.

Every arc ``(u, v)`` runs through a *staged* filter, cheapest evidence
first — the same philosophy as the paper's pruning rules, applied to
the sketch domain:

stage 1 — Bloom exclusion (a few dozen word ops per arc)
    A Bloom bitset has no false negatives, so every bit of
    ``B_u & ~B_v`` was set only by neighbors of ``u`` that are certainly
    not neighbors of ``v``, and distinct bits come from distinct
    elements.  Hence ``|N(u) ∩ N(v)| <= d(u) - popcount(B_u & ~B_v)``,
    and symmetrically for ``v``.  ``ub + 2 < min_cn`` *certifies* NSIM.
    In an aggressive band (``error > 0``) the linear-counting inversion
    of the fill fractions (Swamidass–Baldi) also yields a cardinality
    estimate precise enough to decide most arcs far from the threshold
    without ever touching the KMV arrays.

stage 2 — KMV matching (a ``2k``-wide sorted merge per arc)
    Runs only on arcs stage 1 left open.  The vertex hash is a
    bijection, so a value present in both KMV sketches certifies one
    real common neighbor: the match count is a sound lower bound, and
    ``lb + 2 >= min_cn`` *certifies* SIM.  When both degrees are
    ``<= k`` the sketches hold the *complete* hashed neighborhoods and
    the match count is exact.  In an aggressive band the Beyer et al.
    distinct-value estimator refines the remaining undecided arcs.

Certificates (stage-1 ``ub``, stage-2 ``lb``, exact small-degree
matches) are sound, never heuristic — which is what makes the
conservative mode (``error == 0``) bit-identical to exact resolution.
Aggressive decisions take an estimate only when it sits more than
``z·σ`` from the decision boundary; anything closer falls back to the
exact intersector.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from ..types import NSIM, SIM, UNKNOWN
from .build import SENTINEL, VertexSketches

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.csr import CSRGraph

__all__ = ["classify_arcs", "estimate_overlaps", "overlap_bounds"]

#: Arcs classified per vectorized chunk (bounds peak scratch memory).
CHUNK = 65536


def _bloom_stage(sk: VertexSketches, u: np.ndarray, v: np.ndarray):
    """Certified upper bound on the open overlap, from Bloom bitsets.

    Returns ``(ub, and_pop)``; cost is a handful of vectorized word
    operations per arc, independent of vertex degrees.
    """
    deg = sk.degrees
    du, dv = deg[u], deg[v]
    and_pop = (
        np.bitwise_count(sk.bloom[u] & sk.bloom[v])
        .sum(axis=1)
        .astype(np.int64)
    )
    pu, pv = sk.bloom_pop[u], sk.bloom_pop[v]
    # popcount(B_u & ~B_v) = pop(u) - pop(u & v), and symmetrically.
    ub = np.minimum(du - (pu - and_pop), dv - (pv - and_pop))
    return np.minimum(ub, np.minimum(du, dv)), and_pop


def _bloom_estimate(sk: VertexSketches, u, v, and_pop):
    """Linear-counting overlap estimate + its deviation scale, per arc.

    Fill fractions of ``B_u``, ``B_v`` and ``B_u | B_v`` invert to
    cardinalities (Swamidass–Baldi); inclusion–exclusion gives the
    intersection.  σ follows Whang et al.'s linear-counting variance
    ``m·(e^t − t − 1)`` per inverted set, summed in quadrature — a
    saturated bitset therefore reports a huge σ and abstains.
    """
    bits = float(sk.params.bits)
    denom = math.log1p(-1.0 / bits)
    cap = bits - 1.0
    pu = np.minimum(sk.bloom_pop[u], cap)
    pv = np.minimum(sk.bloom_pop[v], cap)
    por = np.minimum(sk.bloom_pop[u] + sk.bloom_pop[v] - and_pop, cap)
    a_hat = np.log1p(-pu / bits) / denom
    b_hat = np.log1p(-pv / bits) / denom
    u_hat = np.log1p(-por / bits) / denom
    est = a_hat + b_hat - u_hat

    def var(n_hat):
        t = n_hat / bits
        return bits * (np.exp(t) - t - 1.0)

    sigma = np.sqrt(var(a_hat) + var(b_hat) + var(u_hat))
    return est, np.maximum(sigma, 1.0)


def _kmv_stage(sk: VertexSketches, u: np.ndarray, v: np.ndarray):
    """Match structure of the two KMV sketches, per arc.

    Returns ``(matches, exact, merged, dup)``: ``matches`` is the sound
    lower bound on the open overlap, ``exact`` marks arcs whose match
    count IS the overlap (both neighborhoods fit in the sketch), and
    ``merged``/``dup`` expose the sorted ``2k``-wide merge for the
    distinct-value estimator.  This is the expensive stage — a row sort
    of ``2k`` words per arc — so callers run it on as few arcs as
    possible.
    """
    k = sk.params.k
    kmv = sk.ensure_kmv(np.concatenate((u, v)))
    merged = np.concatenate((kmv[u], kmv[v]), axis=1)
    merged.sort(axis=1)
    dup = (merged[:, 1:] == merged[:, :-1]) & (merged[:, 1:] != SENTINEL)
    matches = dup.sum(axis=1).astype(np.int64)
    exact = (sk.degrees[u] <= k) & (sk.degrees[v] <= k)
    return matches, exact, merged, dup


def _kmv_estimate(sk: VertexSketches, merged, dup):
    """Beyer et al. distinct-value estimate of the open overlap + σ.

    With τ the k-th smallest distinct merged value, ``|A ∪ B| ≈
    (k−1)/τ̂`` and ``|A ∩ B| ≈ ρ·|A ∪ B|`` where ρ is the fraction of
    the k values below τ that are matches.  σ is the binomial deviation
    of the ρ counter — a calibration knob for the fallback band, not a
    rigorous confidence interval.
    """
    k = sk.params.k
    rows = np.arange(merged.shape[0])
    isnew = np.ones(merged.shape, dtype=bool)
    isnew[:, 1:] = merged[:, 1:] != merged[:, :-1]
    ranks = np.cumsum(isnew, axis=1)
    tau = merged[rows, np.argmax(ranks == k, axis=1)]
    m_leq = (dup & (merged[:, 1:] <= tau[:, None])).sum(axis=1)
    tau_frac = (tau.astype(np.float64) + 1.0) / 2.0**64
    union_hat = (k - 1) / tau_frac
    rho = m_leq / float(k)
    est = rho * union_hat
    sigma = np.maximum(
        union_hat * np.sqrt(np.maximum(rho * (1.0 - rho), 1.0 / k) / k),
        1.0,
    )
    return est, sigma


def overlap_bounds(
    sk: VertexSketches, u: np.ndarray, v: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Certified ``(lb, ub)`` on the *open* overlap of each ``(u, v)``.

    Exposed for the property tests: for every pair,
    ``lb <= |N(u) ∩ N(v)| <= ub`` holds deterministically.
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    lbs, ubs = [], []
    for s in range(0, u.size, CHUNK):
        cu, cv = u[s : s + CHUNK], v[s : s + CHUNK]
        ub, _ = _bloom_stage(sk, cu, cv)
        matches, exact, _, _ = _kmv_stage(sk, cu, cv)
        lbs.append(matches)
        ubs.append(np.where(exact, matches, ub))
    if not lbs:
        z = np.zeros(0, dtype=np.int64)
        return z, z.copy()
    return np.concatenate(lbs), np.concatenate(ubs)


def classify_arcs(
    sk: VertexSketches,
    graph: "CSRGraph",
    arcs: np.ndarray,
    mcn: np.ndarray,
    src: np.ndarray | None = None,
) -> np.ndarray:
    """SIM / NSIM / UNKNOWN for each arc, from sketches alone.

    ``mcn`` holds the closed-overlap thresholds *aligned with* ``arcs``.
    UNKNOWN marks the arcs that must fall back to exact resolution.
    """
    arcs = np.asarray(arcs, dtype=np.int64)
    states = np.full(arcs.size, UNKNOWN, dtype=np.int8)
    if arcs.size == 0:
        return states
    if src is None:
        src = graph.arc_source()
    mcn = np.asarray(mcn, dtype=np.int64)
    z = sk.params.z_score
    aggressive = not math.isinf(z)
    gate = sk.params.effective_gate
    deg = sk.degrees
    for s in range(0, arcs.size, CHUNK):
        sl = slice(s, min(s + CHUNK, arcs.size))
        u = src[arcs[sl]].astype(np.int64)
        v = graph.dst[arcs[sl]].astype(np.int64)
        m = mcn[sl]
        out = states[sl]
        if gate > 0:
            # Cost gate: below the break-even degree the exact kernel is
            # cheaper than a Bloom gather — leave those arcs UNKNOWN
            # without touching any sketch memory.
            el = np.flatnonzero(np.minimum(deg[u], deg[v]) >= gate)
            if el.size == 0:
                continue
            if el.size < u.size:
                sub = classify_arcs(sk, graph, arcs[sl][el], m[el], src=src)
                out[el] = sub
                states[sl] = out
                continue
        # Stage 1: Bloom upper bound — certifies NSIM cheaply.
        ub, and_pop = _bloom_stage(sk, u, v)
        out[ub + 2 < m] = NSIM
        if aggressive:
            # Bloom-only estimate: decides arcs far from the boundary
            # without paying for the KMV merge at all.
            und = np.flatnonzero(out == UNKNOWN)
            if und.size:
                est, sigma = _bloom_estimate(
                    sk, u[und], v[und], and_pop[und]
                )
                est = np.clip(est, 0.0, ub[und])
                # The decision flips between overlap min_cn-1 and
                # min_cn; measure distance from that midpoint.
                dist = est + 2.0 - (m[und] - 0.5)
                take = np.abs(dist) > z * sigma
                out[und[take]] = np.where(dist[take] > 0.0, SIM, NSIM)
        # Stage 2: KMV matching on the survivors only.
        und = np.flatnonzero(out == UNKNOWN)
        if und.size:
            uu, vv = u[und], v[und]
            matches, exact, merged, dup = _kmv_stage(sk, uu, vv)
            ub2 = np.where(exact, matches, ub[und])
            mu_ = m[und]
            sub = out[und]
            sub[matches + 2 >= mu_] = SIM
            sub[ub2 + 2 < mu_] = NSIM
            if aggressive:
                left = np.flatnonzero(sub == UNKNOWN)
                if left.size:
                    est_k, sig_k = _kmv_estimate(
                        sk, merged[left], dup[left]
                    )
                    est_b, sig_b = _bloom_estimate(
                        sk, uu[left], vv[left], and_pop[und][left]
                    )
                    est = np.clip(
                        0.5 * (est_k + est_b), matches[left], ub2[left]
                    )
                    # σ of the two-estimator mean (treated independent).
                    sigma = 0.5 * np.sqrt(sig_k**2 + sig_b**2)
                    dist = est + 2.0 - (mu_[left] - 0.5)
                    take = np.abs(dist) > z * sigma
                    sub[left[take]] = np.where(
                        dist[take] > 0.0, SIM, NSIM
                    )
            out[und] = sub
        states[sl] = out
    return states


def estimate_overlaps(
    sk: VertexSketches,
    graph: "CSRGraph",
    arcs: np.ndarray,
    src: np.ndarray | None = None,
) -> np.ndarray:
    """Estimated *closed* overlaps ``|N[u] ∩ N[v]|`` per arc (int64).

    Used by the approximate :class:`~repro.core.gsindex.GSIndex`
    construction: exact where the sketches certify exactness (both
    degrees ``<= k``), otherwise the mean of the KMV and Bloom
    estimators clipped into the certified bracket and rounded to the
    nearest integer.
    """
    arcs = np.asarray(arcs, dtype=np.int64)
    if src is None:
        src = graph.arc_source()
    out = np.empty(arcs.size, dtype=np.int64)
    for s in range(0, arcs.size, CHUNK):
        sl = slice(s, min(s + CHUNK, arcs.size))
        u = src[arcs[sl]].astype(np.int64)
        v = graph.dst[arcs[sl]].astype(np.int64)
        ub, and_pop = _bloom_stage(sk, u, v)
        matches, exact, merged, dup = _kmv_stage(sk, u, v)
        ub = np.where(exact, matches, ub)
        est_k, _ = _kmv_estimate(sk, merged, dup)
        est_b, _ = _bloom_estimate(sk, u, v, and_pop)
        est = np.clip(
            np.rint(0.5 * (est_k + est_b)), matches, ub
        ).astype(np.int64)
        out[sl] = np.where(exact, matches, est) + 2
    return out
