"""Sketch-based approximate similarity with exact boundary fallback.

Per-vertex probabilistic set representations (Bloom bitsets and
k-minimum-values sketches, à la ProbGraph) estimate the closed-
neighborhood overlap ``|N[u] ∩ N[v]|`` in O(sketch) instead of
O(deg(u)+deg(v)).  A confidence gate classifies each surviving arc as
definitely-similar / definitely-dissimilar / uncertain; only uncertain
arcs fall back to the exact intersectors.  With ``error == 0`` every
sketch decision is *certified* by deterministic bounds and the
clustering is bit-identical to exact mode; see ``docs/approximate.md``.
"""

from .build import SENTINEL, VertexSketches, build_sketches, hash_vertices
from .config import SketchParams
from .estimate import classify_arcs, estimate_overlaps, overlap_bounds

__all__ = [
    "SketchParams",
    "VertexSketches",
    "build_sketches",
    "hash_vertices",
    "classify_arcs",
    "estimate_overlaps",
    "overlap_bounds",
    "SENTINEL",
]
