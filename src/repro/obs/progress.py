"""Live progress for long runs: heartbeat renderer with cost-model ETA.

The backends already know, per phase, the scheduler's modelled cost of
every task (arc counts under
:func:`~repro.parallel.scheduler.arc_range_cost_model`); progress
reporting is just that bookkeeping surfaced while the run is still
going.  Like tracing, it is *ambient*: instrumented code calls
:func:`current_progress` and the disabled default
(:data:`NULL_PROGRESS`) makes every call a constant no-op, so the
backends pay nothing when ``--progress`` is off.

The :class:`ProgressReporter` accumulates per-phase completed/total
weight from the backend threads and renders from a daemon heartbeat
thread:

* on a TTY, a single carriage-return-rewritten status line —
  ``[phase 2/…] similarity pruning  63.1% (12.3M/19.5M arcs)  ETA 4.2s``
  — refreshed every ``interval`` seconds;
* when stderr is **not** a TTY (CI logs, redirects), it degrades to a
  plain log line every ``log_interval`` seconds, so pipelines get
  parseable breadcrumbs instead of ``\\r`` soup.

The ETA is the cost model's own estimate: remaining weight divided by
the observed weight-completion rate since the phase began — exactly as
honest as the model (arc counts track similarity work well, vertex
counts are a floor for the later phases).  The phase label is read from
the ambient tracer's open lane-0 span when one exists, so the rendered
names match the exported traces.
"""

from __future__ import annotations

import sys
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator, TextIO

from .tracer import current_tracer

__all__ = [
    "ProgressReporter",
    "NullProgress",
    "NULL_PROGRESS",
    "current_progress",
    "use_progress",
]


def _format_weight(weight: float) -> str:
    if weight >= 1e6:
        return f"{weight / 1e6:.1f}M"
    if weight >= 1e3:
        return f"{weight / 1e3:.1f}k"
    return f"{weight:.0f}"


class ProgressReporter:
    """Heartbeat-driven progress over the run's phases.

    Thread-safe by a single lock around the counters; the backend
    threads only add floats, the heartbeat thread only reads, so
    contention is negligible next to task granularity.
    """

    def __init__(
        self,
        stream: TextIO | None = None,
        *,
        interval: float = 0.25,
        log_interval: float = 5.0,
        unit: str = "arcs",
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.interval = float(interval)
        self.log_interval = float(log_interval)
        self.unit = unit
        self.enabled = True
        self._lock = threading.Lock()
        self._phase = 0
        self._label = ""
        self._total = 0.0
        self._done = 0.0
        self._phase_began = 0.0
        self._active = False
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._line_open = False
        self._last_log = 0.0
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())

    # -- backend-facing API ----------------------------------------------

    def phase_begin(self, total_weight: float, label: str = "") -> None:
        """A phase with ``total_weight`` modelled cost is starting."""
        with self._lock:
            self._phase += 1
            self._label = label
            self._total = max(float(total_weight), 0.0)
            self._done = 0.0
            self._phase_began = time.perf_counter()
            self._active = True
        self._last_log = 0.0  # log the new phase promptly

    def advance(self, weight: float) -> None:
        """``weight`` modelled cost just completed (any thread)."""
        with self._lock:
            self._done += float(weight)

    def phase_end(self) -> None:
        with self._lock:
            self._done = self._total
            self._active = False

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "ProgressReporter":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._beat, name="repro-progress", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> "ProgressReporter":
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=max(1.0, 4 * self.interval))
            self._thread = None
        self._clear_line()
        return self

    def __enter__(self) -> "ProgressReporter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- rendering --------------------------------------------------------

    def _beat(self) -> None:
        period = self.interval if self._tty else min(
            self.interval, self.log_interval
        )
        while not self._stop.wait(period):
            self._render(time.perf_counter())

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time progress state (the heartbeat's input, testable
        without a thread)."""
        with self._lock:
            phase, label = self._phase, self._label
            total, done = self._total, self._done
            began, active = self._phase_began, self._active
        if not label:
            span_name = current_tracer().active_name(0)
            if span_name:
                label = span_name
        now = time.perf_counter()
        frac = min(done / total, 1.0) if total > 0 else 0.0
        elapsed = max(now - began, 1e-9) if active else 0.0
        eta = None
        if active and 0 < done < total:
            rate = done / elapsed  # weight units per second, observed
            eta = (total - done) / rate
        return {
            "phase": phase,
            "label": label,
            "total": total,
            "done": done,
            "fraction": frac,
            "active": active,
            "eta_seconds": eta,
        }

    def format_line(self, snap: dict[str, Any] | None = None) -> str:
        snap = snap if snap is not None else self.snapshot()
        if snap["phase"] == 0:
            return "[starting]"
        label = snap["label"] or f"phase {snap['phase']}"
        if not snap["active"]:
            return f"[phase {snap['phase']}] {label}  done"
        pct = snap["fraction"] * 100.0
        line = (
            f"[phase {snap['phase']}] {label}  {pct:5.1f}% "
            f"({_format_weight(snap['done'])}/"
            f"{_format_weight(snap['total'])} {self.unit})"
        )
        if snap["eta_seconds"] is not None:
            line += f"  ETA {snap['eta_seconds']:.1f}s"
        return line

    def _render(self, now: float) -> None:
        snap = self.snapshot()
        if snap["phase"] == 0:
            return
        line = self.format_line(snap)
        try:
            if self._tty:
                self.stream.write("\r\x1b[2K" + line)
                self.stream.flush()
                self._line_open = True
            elif now - self._last_log >= self.log_interval:
                self.stream.write(line + "\n")
                self.stream.flush()
                self._last_log = now
        except (OSError, ValueError):  # closed stream: go quiet
            self.enabled = False
            self._stop.set()

    def _clear_line(self) -> None:
        if self._line_open:
            try:
                self.stream.write("\r\x1b[2K")
                self.stream.flush()
            except (OSError, ValueError):
                pass
            self._line_open = False


class NullProgress:
    """Disabled progress: every method is a constant no-op."""

    enabled = False

    def phase_begin(self, total_weight: float, label: str = "") -> None:
        return None

    def advance(self, weight: float) -> None:
        return None

    def phase_end(self) -> None:
        return None


#: The process-wide disabled reporter (shared; holds no state).
NULL_PROGRESS = NullProgress()

_CURRENT: ProgressReporter | NullProgress = NULL_PROGRESS


def current_progress() -> ProgressReporter | NullProgress:
    """The ambient progress reporter the backends advance."""
    return _CURRENT


@contextmanager
def use_progress(
    reporter: ProgressReporter | NullProgress,
) -> Iterator[ProgressReporter | NullProgress]:
    """Install ``reporter`` as the ambient progress sink for the block."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = reporter
    try:
        yield reporter
    finally:
        _CURRENT = previous
