"""Benchmark regression gating: compare fresh results against baselines.

The CI hook behind ``benchmarks/check_regression.py``: a *baseline* JSON
(committed under ``benchmarks/baselines/``) records the metrics of a
known-good run; a fresh run reproduces them and every metric is compared
under a per-kind tolerance.  Metrics fall into three kinds, classified
by name:

* **counts** (default) — machine-independent work tallies (CompSim
  invocations, scalar/vector ops, cluster counts).  Deterministic for a
  fixed seed, so *any* drift beyond ``count_tol`` (default 0.1%) fails —
  in either direction: an unexplained drop is as suspicious as a rise.
* **wall** (name contains ``wall`` or ends in ``_seconds``) — lower is
  better; fails when the fresh value exceeds baseline by more than
  ``wall_tol``.  Wall metrics should be *calibrated* (divided by
  :func:`calibrate`'s fixed-workload time on the same host) so baselines
  survive hardware changes.
* **speedup** (name contains ``speedup``) — higher is better; fails when
  the fresh value falls below baseline by more than ``speedup_tol``.

The smoke workload (:func:`run_smoke`) runs ppSCAN in both execution
modes on a deterministic stand-in graph, asserts the clusterings agree,
and emits one comparable metrics dict (plus, optionally, the Chrome
trace of the batched run for CI artifacts).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = [
    "Regression",
    "calibrate",
    "classify_metric",
    "compare_results",
    "flatten",
    "run_smoke",
    "DEFAULT_COUNT_TOL",
    "DEFAULT_WALL_TOL",
    "DEFAULT_SPEEDUP_TOL",
]

DEFAULT_COUNT_TOL = 0.001
DEFAULT_WALL_TOL = 0.15
DEFAULT_SPEEDUP_TOL = 0.40


@dataclass(frozen=True)
class Regression:
    """One metric that violated its tolerance."""

    key: str
    kind: str
    baseline: float
    fresh: float
    tolerance: float

    @property
    def rel_change(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.fresh else 0.0
        return (self.fresh - self.baseline) / abs(self.baseline)

    def describe(self) -> str:
        return (
            f"{self.key} [{self.kind}]: baseline {self.baseline:g} -> "
            f"fresh {self.fresh:g} ({self.rel_change:+.1%}, "
            f"tolerance {self.tolerance:.1%})"
        )


def flatten(tree: Mapping[str, Any], prefix: str = "") -> dict[str, float]:
    """Flatten nested mappings into dot-keyed numeric leaves; non-numeric
    leaves (labels, descriptions) are skipped."""
    out: dict[str, float] = {}
    for key, value in tree.items():
        name = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            out.update(flatten(value, name))
        elif isinstance(value, bool):
            out[name] = float(value)
        elif isinstance(value, (int, float)):
            out[name] = float(value)
    return out


def classify_metric(key: str) -> str:
    """``wall`` / ``speedup`` / ``count`` / ``info`` from the metric's name.

    ``info`` metrics (host calibration) are recorded for debuggability
    but never gated — they are *expected* to differ between hosts.
    """
    lowered = key.lower()
    if "calibration" in lowered:
        return "info"
    if "speedup" in lowered:
        return "speedup"
    if "wall" in lowered or lowered.endswith("_seconds"):
        return "wall"
    return "count"


def compare_results(
    baseline: Mapping[str, Any],
    fresh: Mapping[str, Any],
    count_tol: float = DEFAULT_COUNT_TOL,
    wall_tol: float = DEFAULT_WALL_TOL,
    speedup_tol: float = DEFAULT_SPEEDUP_TOL,
) -> list[Regression]:
    """Every metric of ``baseline`` checked against ``fresh``.

    Metrics present only in ``fresh`` are ignored (new instrumentation is
    not a regression); metrics missing from ``fresh`` fail loudly.
    """
    base_flat = flatten(baseline)
    fresh_flat = flatten(fresh)
    regressions: list[Regression] = []
    for key in sorted(base_flat):
        kind = classify_metric(key)
        if kind == "info":
            continue
        base = base_flat[key]
        if key not in fresh_flat:
            regressions.append(Regression(key, "missing", base, float("nan"), 0.0))
            continue
        value = fresh_flat[key]
        if kind == "wall":
            limit = base * (1.0 + wall_tol)
            if value > limit and value - base > 1e-12:
                regressions.append(Regression(key, kind, base, value, wall_tol))
        elif kind == "speedup":
            limit = base * (1.0 - speedup_tol)
            if value < limit:
                regressions.append(
                    Regression(key, kind, base, value, speedup_tol)
                )
        else:
            if base == 0:
                drift = abs(value)
            else:
                drift = abs(value - base) / abs(base)
            if drift > count_tol:
                regressions.append(Regression(key, kind, base, value, count_tol))
    return regressions


# ---------------------------------------------------------------------------
# Host calibration and the smoke workload
# ---------------------------------------------------------------------------


def calibrate(rounds: int = 3) -> float:
    """Seconds for a fixed reference workload on this host (best of
    ``rounds``).

    The mixture mirrors the hot paths (interpreted integer loop + NumPy
    sort/cumsum dispatches) so ``wall / calibrate()`` is a roughly
    host-independent "calibrated wall" unit that a committed baseline can
    gate within a few tens of percent.
    """
    import numpy as np

    data = np.arange(200_000, dtype=np.int64)[::-1].copy()
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        acc = 0
        for i in range(120_000):
            acc += i & 7
        np.sort(data)
        np.cumsum(data).sum()
        best = min(best, time.perf_counter() - t0)
    # Keep the value visible so a pathological host is debuggable.
    return best + (0.0 * acc)


def _record_counts(record) -> dict[str, int]:
    total = record.total()
    return {
        "compsims": total.compsims,
        "scalar_cmp": total.scalar_cmp,
        "vector_ops": total.vector_ops,
        "bound_updates": total.bound_updates,
        "arcs": total.arcs,
        "atomics": total.atomics,
    }


def run_smoke(
    scale: float = 0.15,
    rounds: int = 3,
    trace_path=None,
) -> dict[str, Any]:
    """The deterministic smoke workload for regression gating.

    Runs ppSCAN in scalar and batched mode on the livejournal stand-in at
    ``scale`` (fixed seed), keeps best-of-``rounds`` walls, verifies both
    modes agree, and returns the comparable metrics dict.  When
    ``trace_path`` is given, the last batched run is traced and exported
    in Chrome format (the CI build artifact).
    """
    from ..core import assert_same_clustering
    from ..core.ppscan import ppscan
    from ..graph.generators import real_world_standin
    from ..types import ScanParams
    from .export import write_chrome_trace
    from .tracer import Tracer, use_tracer

    params = ScanParams(eps=0.4, mu=5)
    graph = real_world_standin("livejournal", scale=scale)
    calib = calibrate()

    legs = (
        ("scalar", dict(exec_mode="scalar")),
        ("batched", dict(exec_mode="batched")),
        # Conservative sketch band: decisions must stay bit-identical,
        # and the CompSim/fallback counts are deterministic, so the
        # sketch path gets the same tight count gating as the exact legs.
        ("sketch", dict(exec_mode="batched", kernel="sketch")),
    )
    results: dict[str, Any] = {}
    walls = {name: float("inf") for name, _ in legs}
    for _ in range(max(rounds, 1)):
        for mode, kwargs in legs:
            t0 = time.perf_counter()
            results[mode] = ppscan(graph, params, **kwargs)
            walls[mode] = min(walls[mode], time.perf_counter() - t0)
    assert_same_clustering(results["scalar"], results["batched"])
    assert_same_clustering(results["scalar"], results["sketch"])

    if trace_path is not None:
        tracer = Tracer()
        with use_tracer(tracer):
            ppscan(graph, params, exec_mode="batched")
        tracer.metrics.ingest_record(results["batched"].record)
        write_chrome_trace(trace_path, tracer)

    reference = results["scalar"]
    data: dict[str, Any] = {
        "workload": {
            "graph": "livejournal",
            "scale": scale,
            "eps": params.eps,
            "mu": params.mu,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
        },
        "clustering": {
            "clusters": reference.num_clusters,
            "cores": reference.num_cores,
            "noncore_memberships": len(reference.noncore_pairs),
        },
        "calibration_seconds": calib,
        "scalar": {
            **_record_counts(results["scalar"].record),
            "wall_units": walls["scalar"] / calib,
        },
        "batched": {
            **_record_counts(results["batched"].record),
            "wall_units": walls["batched"] / calib,
            "speedup": walls["scalar"] / walls["batched"],
        },
        "sketch": {
            **_record_counts(results["sketch"].record),
            "wall_units": walls["sketch"] / calib,
            "speedup": walls["scalar"] / walls["sketch"],
        },
    }
    return data
