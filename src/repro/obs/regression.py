"""Benchmark regression gating: compare fresh results against baselines.

The CI hook behind ``benchmarks/check_regression.py``: a *baseline* JSON
(committed under ``benchmarks/baselines/``) records the metrics of a
known-good run; a fresh run reproduces them and every metric is compared
under a per-kind tolerance.  Metrics fall into three kinds, classified
by name:

* **counts** (default) — machine-independent work tallies (CompSim
  invocations, scalar/vector ops, cluster counts).  Deterministic for a
  fixed seed, so *any* drift beyond ``count_tol`` (default 0.1%) fails —
  in either direction: an unexplained drop is as suspicious as a rise.
* **wall** (name contains ``wall`` or ends in ``_seconds``) — lower is
  better; fails when the fresh value exceeds baseline by more than
  ``wall_tol``.  Wall metrics should be *calibrated* (divided by
  :func:`calibrate`'s fixed-workload time on the same host) so baselines
  survive hardware changes.
* **speedup** (name contains ``speedup``) — higher is better; fails when
  the fresh value falls below baseline by more than ``speedup_tol``.

The smoke workload (:func:`run_smoke`) runs ppSCAN in both execution
modes on a deterministic stand-in graph, asserts the clusterings agree,
and emits one comparable metrics dict (plus, optionally, the Chrome
trace of the batched run for CI artifacts).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = [
    "Regression",
    "TrendViolation",
    "calibrate",
    "classify_metric",
    "compare_results",
    "flatten",
    "median_mad",
    "run_smoke",
    "trend_bands",
    "trend_gate",
    "DEFAULT_COUNT_TOL",
    "DEFAULT_WALL_TOL",
    "DEFAULT_SPEEDUP_TOL",
    "DEFAULT_MIN_HISTORY",
    "DEFAULT_NSIGMA",
    "DEFAULT_REL_FLOOR",
]

DEFAULT_COUNT_TOL = 0.001
DEFAULT_WALL_TOL = 0.15
DEFAULT_SPEEDUP_TOL = 0.40

#: Trend gating: fewer comparable ledger records than this and the gate
#: falls back to the static baseline (history too thin for robust bands).
DEFAULT_MIN_HISTORY = 3
#: Width of the MAD band in (scaled) sigmas.  MAD × 1.4826 estimates the
#: standard deviation under normality; 4σ keeps the false-positive rate
#: negligible over hundreds of gated metrics while a 2x slowdown (≈ +100%)
#: still lands far outside any realistic smoke-benchmark band.
DEFAULT_NSIGMA = 4.0
#: Relative floor on the band half-width.  Protects against a degenerate
#: MAD (near-identical history values → zero-width band) flagging noise;
#: a genuine 2x regression clears a 25% floor with a 4x margin.
DEFAULT_REL_FLOOR = 0.25


@dataclass(frozen=True)
class Regression:
    """One metric that violated its tolerance."""

    key: str
    kind: str
    baseline: float
    fresh: float
    tolerance: float

    @property
    def rel_change(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.fresh else 0.0
        return (self.fresh - self.baseline) / abs(self.baseline)

    def describe(self) -> str:
        return (
            f"{self.key} [{self.kind}]: baseline {self.baseline:g} -> "
            f"fresh {self.fresh:g} ({self.rel_change:+.1%}, "
            f"tolerance {self.tolerance:.1%})"
        )


def flatten(tree: Mapping[str, Any], prefix: str = "") -> dict[str, float]:
    """Flatten nested mappings into dot-keyed numeric leaves; non-numeric
    leaves (labels, descriptions) are skipped."""
    out: dict[str, float] = {}
    for key, value in tree.items():
        name = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            out.update(flatten(value, name))
        elif isinstance(value, bool):
            out[name] = float(value)
        elif isinstance(value, (int, float)):
            out[name] = float(value)
    return out


def classify_metric(key: str) -> str:
    """``wall`` / ``speedup`` / ``count`` / ``info`` from the metric's name.

    ``info`` metrics (host calibration) are recorded for debuggability
    but never gated — they are *expected* to differ between hosts.
    """
    lowered = key.lower()
    if "calibration" in lowered:
        return "info"
    if "speedup" in lowered:
        return "speedup"
    if "wall" in lowered or lowered.endswith("_seconds"):
        return "wall"
    return "count"


def compare_results(
    baseline: Mapping[str, Any],
    fresh: Mapping[str, Any],
    count_tol: float = DEFAULT_COUNT_TOL,
    wall_tol: float = DEFAULT_WALL_TOL,
    speedup_tol: float = DEFAULT_SPEEDUP_TOL,
) -> list[Regression]:
    """Every metric of ``baseline`` checked against ``fresh``.

    Metrics present only in ``fresh`` are ignored (new instrumentation is
    not a regression); metrics missing from ``fresh`` fail loudly.
    """
    base_flat = flatten(baseline)
    fresh_flat = flatten(fresh)
    regressions: list[Regression] = []
    for key in sorted(base_flat):
        kind = classify_metric(key)
        if kind == "info":
            continue
        base = base_flat[key]
        if key not in fresh_flat:
            regressions.append(Regression(key, "missing", base, float("nan"), 0.0))
            continue
        value = fresh_flat[key]
        if kind == "wall":
            limit = base * (1.0 + wall_tol)
            if value > limit and value - base > 1e-12:
                regressions.append(Regression(key, kind, base, value, wall_tol))
        elif kind == "speedup":
            limit = base * (1.0 - speedup_tol)
            if value < limit:
                regressions.append(
                    Regression(key, kind, base, value, speedup_tol)
                )
        else:
            if base == 0:
                drift = abs(value)
            else:
                drift = abs(value - base) / abs(base)
            if drift > count_tol:
                regressions.append(Regression(key, kind, base, value, count_tol))
    return regressions


# ---------------------------------------------------------------------------
# Trend-aware gating over ledger history
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TrendViolation:
    """One metric outside its robust history band."""

    key: str
    kind: str
    fresh: float
    median: float
    mad: float
    limit: float
    n_history: int

    def describe(self) -> str:
        direction = "above" if self.kind != "speedup" else "below"
        return (
            f"{self.key} [{self.kind}]: fresh {self.fresh:g} is {direction} "
            f"the trend limit {self.limit:g} "
            f"(median {self.median:g}, MAD {self.mad:g}, "
            f"n={self.n_history})"
        )


def median_mad(values: "list[float]") -> tuple[float, float]:
    """Median and median absolute deviation of ``values``.

    Both are 50%-breakdown robust: one wild outlier in the history (a
    noisy CI run that still passed) shifts neither, which is the whole
    reason the trend gate prefers them to mean/stdev.
    """
    if not values:
        raise ValueError("median_mad of empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    med = (
        ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2.0
    )
    deviations = sorted(abs(v - med) for v in ordered)
    mad = (
        deviations[mid]
        if n % 2
        else (deviations[mid - 1] + deviations[mid]) / 2.0
    )
    return med, mad


def trend_bands(
    histories: "list[Mapping[str, Any]]",
) -> dict[str, tuple[float, float, int]]:
    """Per-metric ``(median, MAD, n)`` over flattened history dicts.

    A metric contributes wherever it appears; metrics absent from some
    records (older instrumentation) simply have smaller ``n``.
    """
    series: dict[str, list[float]] = {}
    for entry in histories:
        for key, value in flatten(entry).items():
            series.setdefault(key, []).append(value)
    out: dict[str, tuple[float, float, int]] = {}
    for key, values in series.items():
        med, mad = median_mad(values)
        out[key] = (med, mad, len(values))
    return out


#: MAD → sigma under normality (1 / Φ⁻¹(3/4)).
MAD_SIGMA = 1.4826


def trend_gate(
    histories: "list[Mapping[str, Any]]",
    fresh: Mapping[str, Any],
    *,
    min_history: int = DEFAULT_MIN_HISTORY,
    nsigma: float = DEFAULT_NSIGMA,
    count_tol: float = DEFAULT_COUNT_TOL,
    rel_floor: float = DEFAULT_REL_FLOOR,
) -> list[TrendViolation]:
    """Gate ``fresh`` against the robust bands of comparable history.

    Classification reuses :func:`classify_metric`:

    * **wall** — one-sided upper band: fails when
      ``fresh > median + max(nsigma · 1.4826 · MAD, rel_floor · median)``;
    * **speedup** — the symmetric lower band (higher is better);
    * **count** — deterministic, so the band is the same tight
      ``count_tol`` relative drift off the *median* (both directions)
      that the static gate uses off the baseline;
    * **info** — never gated.

    Metrics with fewer than ``min_history`` history points are skipped
    (the caller decides whether thin history falls back to the static
    baseline — :func:`trend_gate` itself only gates what it can defend).
    New metrics absent from history are never violations.
    """
    bands = trend_bands(histories)
    fresh_flat = flatten(fresh)
    violations: list[TrendViolation] = []
    for key in sorted(fresh_flat):
        kind = classify_metric(key)
        if kind == "info":
            continue
        band = bands.get(key)
        if band is None:
            continue
        median, mad, n = band
        if n < min_history:
            continue
        value = fresh_flat[key]
        if kind == "wall":
            width = max(nsigma * MAD_SIGMA * mad, rel_floor * abs(median))
            limit = median + width
            if value > limit and value - median > 1e-12:
                violations.append(
                    TrendViolation(key, kind, value, median, mad, limit, n)
                )
        elif kind == "speedup":
            width = max(nsigma * MAD_SIGMA * mad, rel_floor * abs(median))
            limit = median - width
            if value < limit:
                violations.append(
                    TrendViolation(key, kind, value, median, mad, limit, n)
                )
        else:
            if median == 0:
                drift = abs(value)
            else:
                drift = abs(value - median) / abs(median)
            if drift > count_tol:
                limit = median * (1.0 + count_tol)
                violations.append(
                    TrendViolation(key, kind, value, median, mad, limit, n)
                )
    return violations


# ---------------------------------------------------------------------------
# Host calibration and the smoke workload
# ---------------------------------------------------------------------------


def calibrate(rounds: int = 3) -> float:
    """Seconds for a fixed reference workload on this host (best of
    ``rounds``).

    The mixture mirrors the hot paths (interpreted integer loop + NumPy
    sort/cumsum dispatches) so ``wall / calibrate()`` is a roughly
    host-independent "calibrated wall" unit that a committed baseline can
    gate within a few tens of percent.
    """
    import numpy as np

    data = np.arange(200_000, dtype=np.int64)[::-1].copy()
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        acc = 0
        for i in range(120_000):
            acc += i & 7
        np.sort(data)
        np.cumsum(data).sum()
        best = min(best, time.perf_counter() - t0)
    # Keep the value visible so a pathological host is debuggable.
    return best + (0.0 * acc)


def _record_counts(record) -> dict[str, int]:
    total = record.total()
    return {
        "compsims": total.compsims,
        "scalar_cmp": total.scalar_cmp,
        "vector_ops": total.vector_ops,
        "bound_updates": total.bound_updates,
        "arcs": total.arcs,
        "atomics": total.atomics,
    }


def run_smoke(
    scale: float = 0.15,
    rounds: int = 3,
    trace_path=None,
) -> dict[str, Any]:
    """The deterministic smoke workload for regression gating.

    Runs ppSCAN in scalar and batched mode on the livejournal stand-in at
    ``scale`` (fixed seed), keeps best-of-``rounds`` walls, verifies both
    modes agree, and returns the comparable metrics dict.  When
    ``trace_path`` is given, the last batched run is traced and exported
    in Chrome format (the CI build artifact).
    """
    from ..core import assert_same_clustering
    from ..core.ppscan import ppscan
    from ..graph.generators import real_world_standin
    from ..types import ScanParams
    from .export import write_chrome_trace
    from .tracer import Tracer, use_tracer

    params = ScanParams(eps=0.4, mu=5)
    graph = real_world_standin("livejournal", scale=scale)
    calib = calibrate()

    legs = (
        ("scalar", dict(exec_mode="scalar")),
        ("batched", dict(exec_mode="batched")),
        # Conservative sketch band: decisions must stay bit-identical,
        # and the CompSim/fallback counts are deterministic, so the
        # sketch path gets the same tight count gating as the exact legs.
        ("sketch", dict(exec_mode="batched", kernel="sketch")),
    )
    results: dict[str, Any] = {}
    walls = {name: float("inf") for name, _ in legs}
    for _ in range(max(rounds, 1)):
        for mode, kwargs in legs:
            t0 = time.perf_counter()
            results[mode] = ppscan(graph, params, **kwargs)
            walls[mode] = min(walls[mode], time.perf_counter() - t0)
    assert_same_clustering(results["scalar"], results["batched"])
    assert_same_clustering(results["scalar"], results["sketch"])

    if trace_path is not None:
        tracer = Tracer()
        with use_tracer(tracer):
            ppscan(graph, params, exec_mode="batched")
        tracer.metrics.ingest_record(results["batched"].record)
        write_chrome_trace(trace_path, tracer)

    reference = results["scalar"]
    data: dict[str, Any] = {
        "workload": {
            "graph": "livejournal",
            "scale": scale,
            "eps": params.eps,
            "mu": params.mu,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
        },
        "clustering": {
            "clusters": reference.num_clusters,
            "cores": reference.num_cores,
            "noncore_memberships": len(reference.noncore_pairs),
        },
        "calibration_seconds": calib,
        "scalar": {
            **_record_counts(results["scalar"].record),
            "wall_units": walls["scalar"] / calib,
        },
        "batched": {
            **_record_counts(results["batched"].record),
            "wall_units": walls["batched"] / calib,
            "speedup": walls["scalar"] / walls["batched"],
        },
        "sketch": {
            **_record_counts(results["sketch"].record),
            "wall_units": walls["sketch"] / calib,
            "speedup": walls["scalar"] / walls["sketch"],
        },
    }
    return data
