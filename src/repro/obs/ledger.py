"""The cross-run ledger: a durable, queryable history of every run.

Per-run telemetry (``obs/`` traces) evaporates when the process exits;
the ledger is the layer that makes performance history *cumulative*.
Every ``cluster`` / ``compare`` / ``sweep`` / bench invocation can append
one schema-versioned record — graph fingerprint, execution-options
summary, per-stage walls, the whole metrics registry (cache / sketch /
supervisor / checkpoint counters included), recovery events, host info
and memory high-water marks — and the trend gate
(:func:`repro.obs.regression.trend_gate`) reads the accumulated history
back to detect drift with robust statistics instead of one-shot
baselines.

Durability model
----------------
The ledger is **append-only JSONL** (one record per line) plus a
checksummed ``manifest`` rewritten atomically (via
:mod:`repro.checkpoint.atomic`) after every append:

* each line carries its own ``crc`` (BLAKE2b of the record minus the
  ``crc`` field), so a reader validates records independently of the
  manifest;
* appends are ``flush`` + ``fsync`` before the manifest is rewritten,
  so a crash between the two leaves a valid line the reader still
  counts (the manifest is advisory, the lines are the truth);
* a crash *mid-append* leaves a torn tail.  Torn or corrupt lines are a
  **clean skip** — :meth:`RunLedger.read` drops them (tallied in
  :attr:`RunLedger.last_skipped`) and the next append first repairs the
  tail (terminates any unterminated bytes with a newline) so the new
  record can never fuse with torn remains.

The same :class:`~repro.parallel.chaos.ProcessCrashPoint` the
crash-restart harness arms (``REPRO_CRASH_EPOCH`` / ``REPRO_CRASH_MODE``)
fires around every append — ``before-save`` dies mid-append with only a
torn prefix on disk, ``after-save`` dies after the record is durable —
which is how the chaos tests prove both halves of the contract.

Keying
------
Records are grouped for trend analysis by two stable hashes:
``workload_key`` (the workload identity: graph fingerprint or generator
descriptor, parameters, kind) and ``options_key`` (the
:meth:`repro.options.ExecutionOptions.describe` summary).  Two runs are
*comparable* iff both keys match — the trend gate never mixes histories
across workloads or execution configurations.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Mapping

from ..checkpoint.atomic import atomic_write_text, fsync_directory
from .tracer import current_tracer

__all__ = [
    "LEDGER_SCHEMA",
    "RunLedger",
    "stable_key",
    "build_record",
    "record_from_run",
    "migrate_legacy_line",
    "migrate_trajectory",
]

#: Record schema version; readers skip records with any other version
#: (a clean skip, never an error — forward compatibility by default).
LEDGER_SCHEMA = 1

_CRC_FIELD = "crc"


def stable_key(payload: Any) -> str:
    """Short stable content hash of any JSON-able payload (hex, 64 bits)."""
    encoded = json.dumps(
        payload, sort_keys=True, default=str, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.blake2b(encoded, digest_size=8).hexdigest()


def _record_crc(record: Mapping[str, Any]) -> str:
    body = {k: v for k, v in record.items() if k != _CRC_FIELD}
    return hashlib.blake2b(
        json.dumps(
            body, sort_keys=True, default=str, separators=(",", ":")
        ).encode("utf-8"),
        digest_size=10,
    ).hexdigest()


def host_info() -> dict[str, Any]:
    """The host descriptor stamped into every record."""
    import platform

    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count() or 1,
    }


def _peak_rss_kb() -> int | None:
    """This process's peak RSS in kilobytes (POSIX; ``None`` elsewhere)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX hosts
        return None
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def build_record(
    kind: str,
    *,
    workload: Mapping[str, Any],
    options: Mapping[str, Any] | None = None,
    algorithm: str | None = None,
    wall_seconds: float | None = None,
    stage_walls: Mapping[str, float] | None = None,
    metrics: Mapping[str, Any] | None = None,
    recovery: Mapping[str, int] | None = None,
    memory: Mapping[str, Any] | None = None,
    extra: Mapping[str, Any] | None = None,
    ts_unix: int | None = None,
) -> dict[str, Any]:
    """Assemble one (unsealed) ledger record.

    ``workload`` must identify the run's input well enough that two
    records with equal ``workload_key`` measured the same computation
    (graph fingerprint or generator descriptor + parameters).
    ``options`` is the execution-options summary
    (:meth:`~repro.options.ExecutionOptions.describe`), hashed into
    ``options_key``.  ``seq`` and ``crc`` are stamped at append time.
    """
    record: dict[str, Any] = {
        "schema": LEDGER_SCHEMA,
        "kind": str(kind),
        "ts_unix": int(time.time()) if ts_unix is None else int(ts_unix),
        "host": host_info(),
        "workload": dict(workload),
        "workload_key": stable_key({"kind": str(kind), **dict(workload)}),
        "options": dict(options) if options else {},
        "options_key": stable_key(dict(options) if options else {}),
    }
    if algorithm is not None:
        record["algorithm"] = str(algorithm)
    if wall_seconds is not None:
        record["wall_seconds"] = float(wall_seconds)
    if stage_walls:
        record["stage_walls"] = {
            str(k): float(v) for k, v in stage_walls.items()
        }
    if metrics:
        record["metrics"] = dict(metrics)
    if recovery:
        record["recovery"] = {str(k): int(v) for k, v in recovery.items()}
    if memory:
        record["memory"] = dict(memory)
    if extra:
        record.update(dict(extra))
    return record


def record_from_run(
    kind: str,
    *,
    graph=None,
    graph_label: str | None = None,
    params=None,
    options=None,
    result=None,
    tracer=None,
    profiler=None,
    wall_seconds: float | None = None,
    algorithm: str | None = None,
    extra: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Build a ledger record straight from the run's live objects.

    Everything is optional and duck-typed so callers assemble what they
    have: ``graph`` adds the CSR content fingerprint and sizes,
    ``params`` the (ε, µ) point, ``options`` its
    :meth:`~repro.options.ExecutionOptions.describe` summary, ``result``
    the per-stage walls of its :class:`~repro.metrics.RunRecord`,
    ``tracer`` the full metrics registry (with ``supervisor.*`` counters
    split out as the recovery summary), and ``profiler`` its
    ``as_dict()`` (sampled hotspots + per-phase memory deltas).  The
    parent's peak RSS is always recorded.
    """
    workload: dict[str, Any] = {}
    if graph is not None:
        from ..cache.store import graph_fingerprint

        workload["graph_fingerprint"] = graph_fingerprint(graph)
        workload["num_vertices"] = int(graph.num_vertices)
        workload["num_edges"] = int(graph.num_edges)
    if graph_label is not None:
        workload["graph"] = str(graph_label)
    if params is not None:
        workload["eps"] = float(params.eps)
        workload["mu"] = int(params.mu)

    options_summary = options.describe() if options is not None else None

    stage_walls: dict[str, float] | None = None
    record_obj = getattr(result, "record", None)
    if record_obj is not None:
        stage_walls = {
            stage.name: stage.wall_seconds for stage in record_obj.stages
        }
        if wall_seconds is None:
            wall_seconds = record_obj.wall_seconds
        if algorithm is None:
            algorithm = record_obj.algorithm

    metrics: dict[str, Any] | None = None
    recovery: dict[str, int] | None = None
    if tracer is not None and getattr(tracer, "metrics", None) is not None:
        metrics = tracer.metrics.as_dict()
        recovery = {
            name.removeprefix("supervisor."): int(value)
            for name, value in metrics.items()
            if name.startswith("supervisor.") and isinstance(value, int)
        } or None

    memory: dict[str, Any] = {}
    rss = _peak_rss_kb()
    if rss is not None:
        memory["parent_peak_rss_kb"] = rss
    if metrics:
        worker_peaks = [
            v
            for k, v in metrics.items()
            if k.startswith("memory.lane.") and k.endswith(".peak_rss_kb")
        ]
        if worker_peaks:
            memory["worker_peak_rss_kb"] = int(max(worker_peaks))
    if profiler is not None:
        memory["profile"] = profiler.as_dict()

    return build_record(
        kind,
        workload=workload,
        options=options_summary,
        algorithm=algorithm,
        wall_seconds=wall_seconds,
        stage_walls=stage_walls,
        metrics=metrics,
        recovery=recovery,
        memory=memory or None,
        extra=extra,
    )


class RunLedger:
    """One append-only ledger file plus its checksummed manifest.

    ``path`` may be a directory (records live in ``<path>/ledger.jsonl``,
    manifest in ``<path>/manifest.json``) or a ``*.jsonl`` file (manifest
    beside it as ``<stem>.manifest.json`` — how the benchmark trajectory
    file stays a single committed artifact).
    """

    def __init__(self, path: str | os.PathLike, *, crash_point=None) -> None:
        path = Path(path)
        if path.suffix == ".jsonl":
            self.file = path
            self.manifest_path = path.with_name(
                path.stem + ".manifest.json"
            )
        else:
            self.file = path / "ledger.jsonl"
            self.manifest_path = path / "manifest.json"
        if crash_point is None:
            from ..parallel.chaos import ProcessCrashPoint

            crash_point = ProcessCrashPoint.from_env()
        self.crash_point = crash_point
        #: Invalid lines dropped by the most recent :meth:`read`.
        self.last_skipped = 0
        self._seq: int | None = None

    @property
    def path(self) -> Path:
        """The JSONL file the ledger appends to."""
        return self.file

    # -- reading ----------------------------------------------------------

    def read(self) -> list[dict[str, Any]]:
        """Every valid record, in file order; torn/corrupt lines skipped.

        A line is valid iff it parses as a JSON object, carries the
        current :data:`LEDGER_SCHEMA`, and its ``crc`` matches its body.
        Anything else — a torn tail from a crash mid-append, a truncated
        or hand-edited line, an unknown future schema — is a clean skip,
        counted in :attr:`last_skipped` and as a ``ledger.skip`` metric
        when a tracer is ambient.
        """
        records: list[dict[str, Any]] = []
        skipped = 0
        try:
            raw = self.file.read_text("utf-8")
        except OSError:
            self.last_skipped = 0
            return records
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if not isinstance(record, dict):
                skipped += 1
                continue
            if record.get("schema") != LEDGER_SCHEMA:
                skipped += 1
                continue
            if record.get(_CRC_FIELD) != _record_crc(record):
                skipped += 1
                continue
            records.append(record)
        self.last_skipped = skipped
        if skipped:
            tracer = current_tracer()
            if tracer.enabled:
                tracer.count("ledger.skip", skipped)
        return records

    def history(
        self,
        *,
        workload_key: str | None = None,
        options_key: str | None = None,
        kind: str | None = None,
        passed_only: bool = True,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """Comparable records, oldest first.

        ``passed_only`` drops records a gate marked failing
        (``record["gate"]["passed"] is False``) so one regressed run
        never widens the bands that should have caught the next one.
        """
        out = []
        for record in self.read():
            if kind is not None and record.get("kind") != kind:
                continue
            if (
                workload_key is not None
                and record.get("workload_key") != workload_key
            ):
                continue
            if (
                options_key is not None
                and record.get("options_key") != options_key
            ):
                continue
            gate = record.get("gate")
            if (
                passed_only
                and isinstance(gate, dict)
                and gate.get("passed") is False
            ):
                continue
            out.append(record)
        if limit is not None:
            out = out[-limit:]
        return out

    # -- writing ----------------------------------------------------------

    def _next_seq(self) -> int:
        if self._seq is None:
            self._seq = len(self.read())
        self._seq += 1
        return self._seq

    def append(self, record: Mapping[str, Any]) -> dict[str, Any]:
        """Durably append one record; returns the sealed copy.

        The record is stamped (``schema``, ``seq``, ``crc``), the file
        tail is repaired if a previous crash left unterminated bytes,
        the line is written with ``fsync``, and the manifest is
        rewritten atomically.  The armed
        :class:`~repro.parallel.chaos.ProcessCrashPoint` fires
        ``before-save`` *mid-append* (only a torn prefix on disk) and
        ``after-save`` once the record is durable.
        """
        sealed = dict(record)
        sealed.setdefault("schema", LEDGER_SCHEMA)
        seq = self._next_seq()
        sealed["seq"] = seq
        sealed[_CRC_FIELD] = _record_crc(sealed)
        line = json.dumps(sealed, sort_keys=True, default=str) + "\n"
        data = line.encode("utf-8")

        self.file.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(
            os.fspath(self.file), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            if os.fstat(fd).st_size > 0:
                # Repair a torn tail: terminate unfinished bytes so this
                # record starts on a fresh line (the torn line stays a
                # clean skip instead of fusing with the new record).
                with open(self.file, "rb") as check:
                    check.seek(-1, os.SEEK_END)
                    if check.read(1) != b"\n":
                        os.write(fd, b"\n")
            split = max(len(data) // 2, 1)
            os.write(fd, data[:split])
            self.crash_point.fire("before-save", seq)
            os.write(fd, data[split:])
            os.fsync(fd)
        finally:
            os.close(fd)
        fsync_directory(self.file.parent)
        self._write_manifest(sealed)
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("ledger.append", 1)
        self.crash_point.fire("after-save", seq)
        return sealed

    def _write_manifest(self, tail: Mapping[str, Any]) -> None:
        manifest = {
            "version": LEDGER_SCHEMA,
            "file": self.file.name,
            "bytes": self.file.stat().st_size,
            "last_seq": tail.get("seq"),
            "tail_crc": tail.get(_CRC_FIELD),
        }
        atomic_write_text(
            self.manifest_path,
            json.dumps(manifest, indent=1, sort_keys=True) + "\n",
        )

    def manifest_status(self) -> str:
        """``ok`` / ``stale`` / ``missing`` — advisory, never load-bearing.

        ``stale`` means the file grew past the manifest (e.g. a crash
        landed between line fsync and manifest rewrite, or another
        writer appended); the per-line checksums still validate every
        record, so a stale manifest costs nothing but this diagnostic.
        """
        try:
            manifest = json.loads(self.manifest_path.read_text("utf-8"))
        except (OSError, ValueError):
            return "missing"
        if not isinstance(manifest, dict):
            return "missing"
        try:
            actual = self.file.stat().st_size
        except OSError:
            actual = 0
        return "ok" if manifest.get("bytes") == actual else "stale"


# ---------------------------------------------------------------------------
# Legacy trajectory migration
# ---------------------------------------------------------------------------


def migrate_legacy_line(obj: Mapping[str, Any]) -> dict[str, Any]:
    """Wrap one pre-ledger trajectory object in the versioned schema.

    The old ``bench_results/trajectory.jsonl`` lines were schema-less
    benchmark summaries (``{"bench": ..., "workload": ..., ...}``).
    They become ``kind="bench"`` records: the benchmark name and
    workload label key the record, every numeric field lands under
    ``metrics`` (flattened) so trend queries see them, and the original
    object is preserved verbatim under ``legacy``.
    """
    from .regression import flatten

    obj = dict(obj)
    bench = str(obj.get("bench", "legacy"))
    workload = {"bench": bench}
    if "workload" in obj:
        workload["workload"] = obj["workload"]
    metrics = {
        k: v
        for k, v in flatten(obj).items()
        if "recorded_unix" not in k  # a timestamp, not a gateable metric
    }
    return build_record(
        "bench",
        workload=workload,
        metrics=metrics or None,
        extra={"legacy": obj},
        ts_unix=obj.get("recorded_unix"),
    )


def migrate_trajectory(path: str | os.PathLike) -> RunLedger:
    """Rewrite a legacy trajectory file in place under the ledger schema.

    Already-versioned records pass through untouched (idempotent);
    schema-less lines are migrated via :func:`migrate_legacy_line`;
    unparseable lines are dropped.  Returns the ledger now managing the
    file.
    """
    path = Path(path)
    lines: list[dict[str, Any]] = []
    if path.exists():
        for line in path.read_text("utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError:
                continue
            if not isinstance(obj, dict):
                continue
            if obj.get("schema") == LEDGER_SCHEMA:
                obj.pop("seq", None)
                obj.pop(_CRC_FIELD, None)
                lines.append(obj)
            else:
                lines.append(migrate_legacy_line(obj))
        path.unlink()
    ledger = RunLedger(path)
    for obj in lines:
        ledger.append(obj)
    return ledger
