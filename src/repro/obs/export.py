"""Trace and metrics exporters: JSONL, Chrome trace events, text report.

Three consumers, three formats:

* :func:`write_jsonl` — one JSON object per line (``meta``, ``span`` and
  ``metric`` records), the machine-diffable archival form;
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (``{"traceEvents": [...]}``) that
  https://ui.perfetto.dev and ``chrome://tracing`` open directly: one
  *thread* per tracer lane, complete (``"ph": "X"``) events per span,
  which renders a run as a Figure-1-style per-phase/per-worker flame
  chart;
* :func:`run_report` — the human-readable per-phase summary for
  terminals and CI logs.

:func:`schedule_chrome_events` converts *simulated* per-worker timelines
(:class:`~repro.parallel.trace.ScheduleTrace`, cycles on a
:class:`~repro.parallel.machine.MachineSpec`) into the same event format,
so a virtual 256-thread KNL schedule and a real wall-clock run open in
the same viewer.

Span timestamps are wall-clock and therefore vary run to run; every
exporter is deterministic in *structure* (event order, names, lanes,
args) for a fixed workload, which is what the determinism tests pin.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from .tracer import Tracer

__all__ = [
    "chrome_trace",
    "jsonl_lines",
    "openmetrics_lines",
    "run_report",
    "schedule_chrome_events",
    "write_chrome_trace",
    "write_jsonl",
    "write_openmetrics",
    "write_trace",
    "TRACE_FORMATS",
]

#: Formats accepted by :func:`write_trace` (and the CLI ``--trace-format``).
TRACE_FORMATS = ("jsonl", "chrome", "report")


def _lane_name(lane: int) -> str:
    return "master" if lane == 0 else f"worker {lane}"


# ---------------------------------------------------------------------------
# Chrome trace-event format
# ---------------------------------------------------------------------------


def chrome_trace(
    tracer: "Tracer",
    process_name: str = "repro-scan",
    pid: int = 1,
) -> dict[str, Any]:
    """The tracer's spans as a Chrome trace-event document.

    Timestamps are microseconds relative to the tracer's epoch; each lane
    becomes one named thread so Perfetto renders one swimlane per worker.
    """
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for lane in tracer.lanes():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": lane,
                "args": {"name": _lane_name(lane)},
            }
        )
    epoch = tracer.epoch
    for span in tracer.sorted_spans():
        events.append(
            {
                "name": span.name,
                "cat": "run",
                "ph": "X",
                "ts": (span.begin - epoch) * 1e6,
                "dur": span.duration * 1e6,
                "pid": pid,
                "tid": span.lane,
                "args": dict(span.attrs),
            }
        )
    if tracer.metrics is not None:
        metrics = tracer.metrics.as_dict()
        if metrics:
            events.append(
                {
                    "name": "metrics",
                    "ph": "I",
                    "s": "g",
                    "ts": 0.0,
                    "pid": pid,
                    "tid": 0,
                    "args": metrics,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def schedule_chrome_events(
    traces: Sequence[Any],
    clock_hz: float = 1.0,
    pid: int = 2,
    process_name: str = "simulated schedule",
) -> dict[str, Any]:
    """Simulated stage schedules as a Chrome trace-event document.

    ``traces`` are :class:`~repro.parallel.trace.ScheduleTrace` objects in
    stage order; stages are laid out back to back (the BSP barrier), each
    virtual worker on its own thread lane, each task one complete event.
    ``clock_hz`` converts the machine model's cycles to microseconds so
    the timeline reads in (simulated) time units.
    """
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    workers = max((t.workers for t in traces), default=0)
    for w in range(workers):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": w,
                "args": {"name": f"virtual worker {w}"},
            }
        )
    to_us = 1e6 / clock_hz
    offset = 0.0
    for trace in traces:
        for task, worker, begin, end in trace.worker_intervals():
            events.append(
                {
                    "name": trace.stage_name,
                    "cat": "simulated",
                    "ph": "X",
                    "ts": (offset + begin) * to_us,
                    "dur": (end - begin) * to_us,
                    "pid": pid,
                    "tid": worker,
                    "args": {"task": task, "cycles": end - begin},
                }
            )
        offset += trace.makespan
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def jsonl_lines(tracer: "Tracer") -> Iterable[str]:
    """One JSON object per line: a ``meta`` header, every span (export
    order), then one ``metric`` record per registry entry."""
    yield json.dumps(
        {
            "type": "meta",
            "lanes": tracer.lanes(),
            "spans": len(tracer.spans),
        },
        sort_keys=True,
    )
    epoch = tracer.epoch
    for span in tracer.sorted_spans():
        yield json.dumps(
            {
                "type": "span",
                "name": span.name,
                "lane": span.lane,
                "depth": span.depth,
                "begin_us": (span.begin - epoch) * 1e6,
                "dur_us": span.duration * 1e6,
                "attrs": dict(span.attrs),
            },
            sort_keys=True,
        )
    if tracer.metrics is not None:
        for name, value in tracer.metrics.as_dict().items():
            yield json.dumps(
                {"type": "metric", "name": name, "value": value},
                sort_keys=True,
            )


# ---------------------------------------------------------------------------
# OpenMetrics textfile exposition
# ---------------------------------------------------------------------------


def _openmetrics_name(name: str) -> str:
    """Sanitize a dot-namespaced metric name to OpenMetrics charset."""
    out = []
    for ch in name:
        out.append(ch if (ch.isascii() and (ch.isalnum() or ch == "_")) else "_")
    sanitized = "".join(out)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return "repro_" + sanitized


def _openmetrics_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def openmetrics_lines(
    metrics, labels: "dict[str, str] | None" = None
) -> Iterable[str]:
    """A flat metrics mapping (or a tracer) as OpenMetrics text lines.

    Every series is exposed as a ``gauge`` (counters included: the
    registry already holds cumulative values and the textfile collector
    re-reads the whole file each scrape, so gauge semantics are the
    faithful ones for a per-run snapshot).  Non-numeric values are
    skipped.  The mandatory ``# EOF`` terminator is included — callers
    must not append after it.
    """
    if not isinstance(metrics, dict):  # a Tracer
        registry = getattr(metrics, "metrics", None)
        metrics = registry.as_dict() if registry is not None else {}
    label_str = ""
    if labels:
        pairs = ",".join(
            f'{key}="{_openmetrics_label_value(str(value))}"'
            for key, value in sorted(labels.items())
        )
        label_str = "{" + pairs + "}"
    for name in sorted(metrics):
        value = metrics[name]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        om_name = _openmetrics_name(name)
        yield f"# TYPE {om_name} gauge"
        yield f"{om_name}{label_str} {value:g}"
    yield "# EOF"


def write_openmetrics(
    path, metrics, labels: "dict[str, str] | None" = None
) -> None:
    """Write an OpenMetrics textfile (node-exporter collector layout)."""
    with open(path, "w", encoding="utf-8") as fh:
        for line in openmetrics_lines(metrics, labels):
            fh.write(line + "\n")


# ---------------------------------------------------------------------------
# Human-readable report
# ---------------------------------------------------------------------------


def run_report(tracer: "Tracer", title: str = "run telemetry") -> str:
    """Per-lane span rollup plus the metric dump, as plain text."""
    lines = [title]
    spans = tracer.sorted_spans()
    lines.append(f"  lanes: {len(tracer.lanes())}, spans: {len(spans)}")
    # Rollup: total time per (depth-0 name), then per nested name.
    for lane in tracer.lanes():
        lane_spans = [s for s in spans if s.lane == lane]
        lines.append(f"  lane {lane} ({_lane_name(lane)}):")
        by_name: dict[tuple[int, str], tuple[int, float]] = {}
        for s in lane_spans:
            key = (s.depth, s.name)
            count, total = by_name.get(key, (0, 0.0))
            by_name[key] = (count + 1, total + s.duration)
        for (depth, name), (count, total) in by_name.items():
            indent = "  " * depth
            lines.append(
                f"    {indent}{name:<32} {count:>5} span(s) "
                f"{total * 1e3:>10.2f}ms"
            )
    if tracer.metrics is not None:
        metrics = tracer.metrics.as_dict()
        if metrics:
            lines.append("  metrics:")
            for name, value in metrics.items():
                if isinstance(value, float):
                    lines.append(f"    {name} = {value:.6g}")
                else:
                    lines.append(f"    {name} = {value}")
        recovery = {
            name.removeprefix("supervisor."): value
            for name, value in metrics.items()
            if name.startswith("supervisor.")
        }
        if recovery:
            summary = ", ".join(
                f"{kind}={count}" for kind, count in sorted(recovery.items())
            )
            lines.append(f"  fault recovery: {summary}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# File writers
# ---------------------------------------------------------------------------


def write_chrome_trace(path, document_or_tracer) -> None:
    """Write a Chrome trace file from a tracer or a prebuilt document."""
    doc = (
        document_or_tracer
        if isinstance(document_or_tracer, dict)
        else chrome_trace(document_or_tracer)
    )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


def write_jsonl(path, tracer: "Tracer") -> None:
    with open(path, "w", encoding="utf-8") as fh:
        for line in jsonl_lines(tracer):
            fh.write(line + "\n")


def write_trace(path, tracer: "Tracer", fmt: str, title: str = "run telemetry") -> None:
    """Dispatch on ``fmt`` (one of :data:`TRACE_FORMATS`)."""
    if fmt == "chrome":
        write_chrome_trace(path, tracer)
    elif fmt == "jsonl":
        write_jsonl(path, tracer)
    elif fmt == "report":
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(run_report(tracer, title=title) + "\n")
    else:
        raise ValueError(
            f"unknown trace format {fmt!r}; known: {list(TRACE_FORMATS)}"
        )
