"""Run observability: span tracing, metrics registry, exporters, gating.

The telemetry layer behind ``repro-scan ... --trace``:

* :mod:`~repro.obs.tracer` — ambient span tracer (zero-overhead no-op
  when disabled) wired through the phase loops, dispatchers and backends;
* :mod:`~repro.obs.metrics` — the namespaced counter/gauge/histogram
  registry that unifies ``OpCounter`` and ``TaskCost`` tallies;
* :mod:`~repro.obs.export` — JSONL, Chrome-trace (Perfetto), OpenMetrics
  textfile and text report exporters, for real wall-clock runs and
  simulated schedules;
* :mod:`~repro.obs.ledger` — the schema-versioned append-only run ledger
  (JSONL + checksummed manifest) that makes per-run telemetry a durable
  cross-run performance history;
* :mod:`~repro.obs.profiler` — opt-in sampling flight recorder (span
  self/cumulative time) plus tracemalloc memory accounting;
* :mod:`~repro.obs.progress` — ambient live-progress reporting behind
  ``--progress`` (heartbeat renderer, cost-model ETA);
* :mod:`~repro.obs.regression` — baseline comparison and trend-aware
  gating for ``benchmarks/check_regression.py`` (imported as a
  submodule, not re-exported here: it pulls in the algorithm layer).

See ``docs/observability.md`` for the user-facing guide.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    use_tracer,
)
from .export import (
    TRACE_FORMATS,
    chrome_trace,
    jsonl_lines,
    openmetrics_lines,
    run_report,
    schedule_chrome_events,
    write_chrome_trace,
    write_jsonl,
    write_openmetrics,
    write_trace,
)
from .ledger import (
    LEDGER_SCHEMA,
    RunLedger,
    build_record,
    migrate_trajectory,
    record_from_run,
    stable_key,
)
from .profiler import SpanProfiler, profile_tracer
from .progress import (
    NULL_PROGRESS,
    NullProgress,
    ProgressReporter,
    current_progress,
    use_progress,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "use_tracer",
    "TRACE_FORMATS",
    "chrome_trace",
    "jsonl_lines",
    "openmetrics_lines",
    "run_report",
    "schedule_chrome_events",
    "write_chrome_trace",
    "write_jsonl",
    "write_openmetrics",
    "write_trace",
    "LEDGER_SCHEMA",
    "RunLedger",
    "build_record",
    "migrate_trajectory",
    "record_from_run",
    "stable_key",
    "SpanProfiler",
    "profile_tracer",
    "NULL_PROGRESS",
    "NullProgress",
    "ProgressReporter",
    "current_progress",
    "use_progress",
]
