"""Run observability: span tracing, metrics registry, exporters, gating.

The telemetry layer behind ``repro-scan ... --trace``:

* :mod:`~repro.obs.tracer` — ambient span tracer (zero-overhead no-op
  when disabled) wired through the phase loops, dispatchers and backends;
* :mod:`~repro.obs.metrics` — the namespaced counter/gauge/histogram
  registry that unifies ``OpCounter`` and ``TaskCost`` tallies;
* :mod:`~repro.obs.export` — JSONL, Chrome-trace (Perfetto) and text
  report exporters, for real wall-clock runs and simulated schedules;
* :mod:`~repro.obs.regression` — baseline comparison for
  ``benchmarks/check_regression.py`` (imported as a submodule, not
  re-exported here: it pulls in the algorithm layer).

See ``docs/observability.md`` for the user-facing guide.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    use_tracer,
)
from .export import (
    TRACE_FORMATS,
    chrome_trace,
    jsonl_lines,
    run_report,
    schedule_chrome_events,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "use_tracer",
    "TRACE_FORMATS",
    "chrome_trace",
    "jsonl_lines",
    "run_report",
    "schedule_chrome_events",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]
