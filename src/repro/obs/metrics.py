"""Namespaced metrics registry: counters, gauges, histograms.

One registry per run unifies the tallies that were previously scattered
across :class:`~repro.intersect.OpCounter` (kernel work),
:class:`~repro.metrics.TaskCost`/:class:`~repro.metrics.RunRecord`
(per-stage work records) and ad-hoc benchmark dicts.  Metric names are
dot-namespaced (``similarity.resolve.bulk_arcs``,
``record.core checking.compsims``), and :meth:`MetricsRegistry.as_dict`
exports the whole registry as one flat, deterministic, JSON-ready
mapping.

The ingestion helpers are duck-typed on ``as_dict()`` so this module
depends on nothing else in the package (the tracer must stay importable
from the leaf modules it instruments).
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonic integer tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming summary (count / sum / min / max) of observed values.

    Stores no samples — the exporters only need the moments, and a run
    can observe one value per task.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Create-on-first-use registry of named metrics."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- access -----------------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    # -- ingestion --------------------------------------------------------

    def ingest(self, prefix: str, tallies: Mapping[str, Any]) -> None:
        """Fold a flat ``{name: int}`` mapping (e.g. ``OpCounter.as_dict``)
        into namespaced counters."""
        for key, value in tallies.items():
            self.counter(f"{prefix}.{key}").inc(int(value))

    def ingest_record(self, record: Any, prefix: str = "record") -> None:
        """Unify a :class:`~repro.metrics.RunRecord` into the registry.

        Emits per-stage counters (``<prefix>.<stage>.<field>``), per-stage
        wall gauges, run totals, and the run wall gauge — one namespace
        for what ``OpCounter`` and ``TaskCost`` used to report separately.
        """
        for stage in record.stages:
            stage_prefix = f"{prefix}.{stage.name}"
            self.ingest(stage_prefix, stage.total().as_dict())
            self.counter(f"{stage_prefix}.tasks").inc(stage.num_tasks)
            self.gauge(f"{stage_prefix}.wall_seconds").set(stage.wall_seconds)
        self.ingest(f"{prefix}.total", record.total().as_dict())
        self.gauge(f"{prefix}.wall_seconds").set(record.wall_seconds)

    # -- export -----------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """Flat, key-sorted export of every metric (JSON-ready)."""
        out: dict[str, Any] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, histogram in self._histograms.items():
            for stat, value in histogram.summary().items():
                out[f"{name}.{stat}"] = value
        return dict(sorted(out.items()))

    def __len__(self) -> int:
        return (
            len(self._counters) + len(self._gauges) + len(self._histograms)
        )
