"""In-process flight recorder: sampled span time plus memory accounting.

The tracer answers *what ran when*; the profiler answers *where the time
inside a span actually went* and *what each phase cost in memory* —
without instrumenting the hot loops, because instrumentation there is
exactly what the zero-overhead :data:`~repro.obs.tracer.NULL_TRACER`
design forbids.

Two independent, individually opt-in mechanisms share the
:class:`SpanProfiler` object:

* **Stack sampling** — a daemon thread wakes every ``interval`` seconds
  and snapshots the tracer's open-span stack on the master lane
  (:meth:`~repro.obs.tracer.Tracer.active_stack`, a lock-free
  point-in-time copy).  Each sample credits the innermost span name
  with *self* time and every enclosing name with *cumulative* time, so
  ``as_dict()`` yields a flat self/cumulative profile per span kind at
  a cost of one tuple copy per tick — the overhead budget in the
  acceptance test is ≤ 5% of smoke-benchmark wall, and at the default
  10 ms interval the sampler sits well under it.

* **Memory accounting** (``memory=True``) — the profiler registers as a
  tracer *observer*: when a top-level phase span opens it notes
  ``tracemalloc.get_traced_memory()`` and resets the peak; when the
  span closes it records the allocation delta and the within-phase peak.
  tracemalloc itself costs real time (it hooks every allocation), which
  is why this half is a separate flag and not bundled with sampling.

Worker-side memory is *not* sampled here — forked workers are separate
processes.  Their peak RSS travels back through the supervisor's
existing pipe messages (piggybacked on the per-task timing tuple) and
lands as ``memory.lane.<lane>.peak_rss_kb`` gauges in the metrics
registry; :func:`repro.obs.ledger.record_from_run` folds both sides into
the ledger record's memory block.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from .tracer import Span, Tracer

__all__ = ["SpanProfiler", "profile_tracer"]

#: Default sampler period: coarse enough to be invisible next to the
#: clustering phases (which run for seconds), fine enough for tens of
#: samples per phase on the smoke workload.
DEFAULT_INTERVAL = 0.01


class SpanProfiler:
    """Sampling profiler over one tracer's master-lane span stack.

    Use as a context manager around the traced run::

        tracer = Tracer()
        with use_tracer(tracer), SpanProfiler(tracer) as prof:
            ppscan(graph, params)
        prof.as_dict()["spans"]["similarity pruning"]["self_seconds"]

    ``memory=True`` additionally registers the profiler as a span
    observer and accounts tracemalloc deltas for top-level (depth ≤ 1,
    lane 0) spans.
    """

    def __init__(
        self,
        tracer: Tracer,
        *,
        interval: float = DEFAULT_INTERVAL,
        lane: int = 0,
        memory: bool = False,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.tracer = tracer
        self.interval = float(interval)
        self.lane = int(lane)
        self.memory = bool(memory)
        self.samples = 0
        self.idle_samples = 0
        self._self: dict[str, int] = {}
        self._cum: dict[str, int] = {}
        self._mem: dict[str, dict[str, float]] = {}
        self._mem_open: dict[int, tuple[int, bool]] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._began: float | None = None
        self.wall_seconds = 0.0
        self._tracemalloc_started_here = False

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "SpanProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._began = time.perf_counter()
        if self.memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._tracemalloc_started_here = True
            self.tracer.add_observer(self)
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._sample_loop, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SpanProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=max(1.0, 10 * self.interval))
        self._thread = None
        if self._began is not None:
            self.wall_seconds = time.perf_counter() - self._began
        if self.memory:
            self.tracer.remove_observer(self)
            if self._tracemalloc_started_here:
                import tracemalloc

                tracemalloc.stop()
                self._tracemalloc_started_here = False
        return self

    def __enter__(self) -> "SpanProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- sampling ---------------------------------------------------------

    def _sample_loop(self) -> None:
        active_stack = self.tracer.active_stack
        lane = self.lane
        wait = self._stop.wait
        while not wait(self.interval):
            stack = active_stack(lane)
            self.samples += 1
            if not stack:
                self.idle_samples += 1
                continue
            leaf = stack[-1]
            self._self[leaf] = self._self.get(leaf, 0) + 1
            # A name appearing twice in one stack (recursive spans) must
            # still be credited once per sample, hence the set.
            for name in set(stack):
                self._cum[name] = self._cum.get(name, 0) + 1

    # -- memory observer (tracer hooks) -----------------------------------

    def span_started(self, span: Span) -> None:
        if span.lane != self.lane or span.depth > 1:
            return
        import tracemalloc

        if not tracemalloc.is_tracing():
            return
        current, _peak = tracemalloc.get_traced_memory()
        # Only the outermost open accounted span may reset the peak —
        # a nested reset would hide the parent's own high-water mark.
        resets_peak = not self._mem_open
        if resets_peak:
            tracemalloc.reset_peak()
        self._mem_open[span.span_id] = (current, resets_peak)

    def span_ended(self, span: Span) -> None:
        opened = self._mem_open.pop(span.span_id, None)
        if opened is None:
            return
        import tracemalloc

        if not tracemalloc.is_tracing():
            return
        before, resets_peak = opened
        current, peak = tracemalloc.get_traced_memory()
        entry = self._mem.setdefault(
            span.name,
            {"alloc_delta_kb": 0.0, "peak_kb": 0.0, "entries": 0.0},
        )
        entry["alloc_delta_kb"] += (current - before) / 1024.0
        if resets_peak:
            entry["peak_kb"] = max(entry["peak_kb"], peak / 1024.0)
        entry["entries"] += 1.0

    # -- results ----------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """The flight-recorder summary (JSON-able, ledger-ready).

        ``spans`` maps span name → estimated ``self_seconds`` /
        ``cum_seconds`` (sample counts × interval) plus the raw counts;
        ``memory`` maps phase name → tracemalloc deltas when memory
        accounting ran.
        """
        spans: dict[str, Any] = {}
        for name in sorted(set(self._self) | set(self._cum)):
            self_n = self._self.get(name, 0)
            cum_n = self._cum.get(name, 0)
            spans[name] = {
                "self_samples": self_n,
                "cum_samples": cum_n,
                "self_seconds": round(self_n * self.interval, 6),
                "cum_seconds": round(cum_n * self.interval, 6),
            }
        out: dict[str, Any] = {
            "interval_seconds": self.interval,
            "samples": self.samples,
            "idle_samples": self.idle_samples,
            "wall_seconds": round(self.wall_seconds, 6),
            "spans": spans,
        }
        if self._mem:
            out["memory"] = {
                name: {k: round(v, 3) for k, v in entry.items()}
                for name, entry in sorted(self._mem.items())
            }
        return out

    def hotspots(self, limit: int = 10) -> list[tuple[str, float]]:
        """Span names by descending self time, ``(name, self_seconds)``."""
        ranked = sorted(
            self._self.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return [
            (name, round(n * self.interval, 6))
            for name, n in ranked[:limit]
        ]


def profile_tracer(
    tracer: Tracer,
    *,
    interval: float = DEFAULT_INTERVAL,
    memory: bool = False,
) -> SpanProfiler:
    """Convenience constructor mirroring :func:`~contextlib.contextmanager`
    usage: ``with profile_tracer(tracer) as prof: ...``."""
    return SpanProfiler(tracer, interval=interval, memory=memory)
