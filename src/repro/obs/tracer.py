"""Span-based run tracing with a zero-overhead disabled path.

A :class:`Tracer` records *spans* — named, nested intervals of wall time
attributed to a *lane* (one lane per worker: lane 0 is the master /
serial path, process-backend workers occupy lanes 1..W) — plus the
counters and gauges of an attached
:class:`~repro.obs.metrics.MetricsRegistry`.  Together they capture what
the paper's evaluation needs per run: the Figure-1-style per-phase wall
breakdown, the Figure-4 dispatch/invocation tallies, and the per-worker
timeline behind the scalability narrative.

Instrumented code never takes a tracer parameter; it reads the *ambient*
tracer:

>>> from repro.obs import Tracer, current_tracer, use_tracer
>>> tracer = Tracer()
>>> with use_tracer(tracer):
...     with current_tracer().span("phase", kind="demo"):
...         current_tracer().count("arcs", 3)
>>> [s.name for s in tracer.spans]
['phase']

When no tracer is installed the ambient tracer is :data:`NULL_TRACER`,
whose every method is a constant no-op (no span objects, no dict writes,
no time reads) — the hot loops stay uninstrumented in the common case,
which is what keeps the traced-off overhead unmeasurable.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from .metrics import MetricsRegistry

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "use_tracer",
]


@dataclass
class Span:
    """One finished (or in-flight) traced interval."""

    span_id: int
    name: str
    begin: float
    end: float
    lane: int = 0
    depth: int = 0
    parent_id: int = -1
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(self.end - self.begin, 0.0)


class Tracer:
    """Collecting tracer: spans + a metrics registry.

    Spans nest per lane (a stack per lane tracks depth and parent), so
    well-formedness — every child interval inside its parent's, on the
    parent's lane — is a structural property the tests can assert.
    """

    enabled = True

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans: list[Span] = []
        self.epoch = time.perf_counter()
        self._next_id = 0
        self._stacks: dict[int, list[Span]] = {}
        self._observers: list[Any] = []

    # -- observers ------------------------------------------------------

    def add_observer(self, observer: Any) -> None:
        """Register a span-lifecycle observer.

        Observers may implement ``span_started(span)`` and/or
        ``span_ended(span)``; both are invoked synchronously on the
        instrumenting thread (the profiler's memory accounting and the
        progress renderer hook in here).  The calls are guarded by an
        emptiness check so an observer-free tracer pays one branch.
        """
        if observer not in self._observers:
            self._observers.append(observer)

    def remove_observer(self, observer: Any) -> None:
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    # -- spans ----------------------------------------------------------

    def start_span(self, name: str, lane: int = 0, **attrs: Any) -> Span:
        """Open a span on ``lane``; pair with :meth:`end_span`."""
        stack = self._stacks.setdefault(lane, [])
        parent = stack[-1] if stack else None
        span = Span(
            span_id=self._next_id,
            name=name,
            begin=time.perf_counter(),
            end=0.0,
            lane=lane,
            depth=len(stack),
            parent_id=parent.span_id if parent is not None else -1,
            attrs=attrs,
        )
        self._next_id += 1
        stack.append(span)
        if self._observers:
            for observer in self._observers:
                started = getattr(observer, "span_started", None)
                if started is not None:
                    started(span)
        return span

    def end_span(self, span: Span) -> Span:
        """Close ``span`` (and any deeper spans left open on its lane)."""
        stack = self._stacks.get(span.lane, [])
        now = time.perf_counter()
        while stack:
            top = stack.pop()
            top.end = now
            self.spans.append(top)
            if self._observers:
                for observer in self._observers:
                    ended = getattr(observer, "span_ended", None)
                    if ended is not None:
                        ended(top)
            if top is span:
                break
        return span

    def active_stack(self, lane: int = 0) -> tuple[str, ...]:
        """Names of the currently-open spans on ``lane``, outermost first.

        A point-in-time snapshot safe to call from another thread: the
        per-lane stack is only ever appended/popped, and a copy is taken
        before iteration, so the worst case is a momentarily stale view —
        exactly what a sampling profiler or progress heartbeat wants.
        """
        stack = self._stacks.get(lane)
        if not stack:
            return ()
        return tuple(span.name for span in list(stack))

    def active_name(self, lane: int = 0) -> str | None:
        """Name of the innermost open span on ``lane`` (``None`` if idle)."""
        stack = self._stacks.get(lane)
        if not stack:
            return None
        snapshot = list(stack)
        return snapshot[-1].name if snapshot else None

    @contextmanager
    def span(self, name: str, lane: int = 0, **attrs: Any) -> Iterator[Span]:
        handle = self.start_span(name, lane=lane, **attrs)
        try:
            yield handle
        finally:
            self.end_span(handle)

    def add_span(
        self,
        name: str,
        begin: float,
        end: float,
        lane: int = 0,
        depth: int = 0,
        **attrs: Any,
    ) -> Span:
        """Record an already-timed interval (e.g. shipped back from a
        process-backend worker, or replayed from a simulated schedule)."""
        span = Span(
            span_id=self._next_id,
            name=name,
            begin=begin,
            end=end,
            lane=lane,
            depth=depth,
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    # -- metrics shortcuts ---------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.metrics.counter(name).inc(n)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.histogram(name).observe(value)

    # -- views -----------------------------------------------------------

    def lanes(self) -> list[int]:
        """Sorted lane ids that received at least one span."""
        return sorted({s.lane for s in self.spans})

    def sorted_spans(self) -> list[Span]:
        """Spans in ``(lane, begin, -duration)`` order — parents before
        children, lanes grouped — the canonical export order."""
        return sorted(
            self.spans, key=lambda s: (s.lane, s.begin, -(s.end - s.begin))
        )


class NullTracer:
    """The disabled tracer: every operation is a constant-time no-op.

    ``enabled`` is ``False`` so hot loops can skip even argument
    construction; calling the methods anyway is safe and allocation-free.
    """

    enabled = False
    metrics = None
    spans: list[Span] = []
    epoch = 0.0

    _NULL_SPAN = Span(span_id=-1, name="", begin=0.0, end=0.0)

    class _NullContext:
        __slots__ = ()

        def __enter__(self):
            return NullTracer._NULL_SPAN

        def __exit__(self, *exc) -> None:
            return None

    _NULL_CONTEXT = _NullContext()

    def start_span(self, name: str, lane: int = 0, **attrs: Any) -> Span:
        return self._NULL_SPAN

    def end_span(self, span: Span) -> Span:
        return span

    def add_observer(self, observer: Any) -> None:
        return None

    def remove_observer(self, observer: Any) -> None:
        return None

    def active_stack(self, lane: int = 0) -> tuple[str, ...]:
        return ()

    def active_name(self, lane: int = 0) -> str | None:
        return None

    def span(self, name: str, lane: int = 0, **attrs: Any):
        return self._NULL_CONTEXT

    def add_span(self, name, begin, end, lane=0, depth=0, **attrs) -> Span:
        return self._NULL_SPAN

    def count(self, name: str, n: int = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def lanes(self) -> list[int]:
        return []

    def sorted_spans(self) -> list[Span]:
        return []


#: The process-wide disabled tracer (shared; it holds no state).
NULL_TRACER = NullTracer()

_CURRENT: Tracer | NullTracer = NULL_TRACER


def current_tracer() -> Tracer | NullTracer:
    """The ambient tracer instrumented code reports to."""
    return _CURRENT


@contextmanager
def use_tracer(tracer: Tracer | NullTracer) -> Iterator[Tracer | NullTracer]:
    """Install ``tracer`` as the ambient tracer for the enclosed block."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = tracer
    try:
        yield tracer
    finally:
        _CURRENT = previous
