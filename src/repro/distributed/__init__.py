"""Distributed (BSP/MapReduce-style) execution simulation — §3.3's
PSCAN/SparkSCAN setting, with exact results and counted communication."""

from .partition import (
    block_partition,
    cut_arcs,
    degree_balanced_partition,
    hash_partition,
)
from .network import COMMODITY_CLUSTER, ClusterSpec, CommRecord, Superstep
from .scan_bsp import PARTITIONERS, distributed_scan

__all__ = [
    "block_partition",
    "hash_partition",
    "degree_balanced_partition",
    "cut_arcs",
    "ClusterSpec",
    "CommRecord",
    "Superstep",
    "COMMODITY_CLUSTER",
    "distributed_scan",
    "PARTITIONERS",
]
