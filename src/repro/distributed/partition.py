"""Vertex partitioners for the distributed-execution simulation."""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["block_partition", "hash_partition", "degree_balanced_partition", "cut_arcs"]


def block_partition(graph: CSRGraph, workers: int) -> np.ndarray:
    """Contiguous vertex ranges: ``owner[v] = v // ceil(n / W)``."""
    _check(workers)
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    block = -(-n // workers)
    return (np.arange(n) // block).astype(np.int64)


def hash_partition(graph: CSRGraph, workers: int, seed: int = 0) -> np.ndarray:
    """Pseudo-random assignment (what MapReduce's default hashing does)."""
    _check(workers)
    rng = np.random.default_rng(seed)
    return rng.integers(0, workers, size=graph.num_vertices, dtype=np.int64)


def degree_balanced_partition(graph: CSRGraph, workers: int) -> np.ndarray:
    """Greedy assignment equalizing per-worker degree sums.

    Vertices are placed heaviest-first on the currently lightest worker —
    the balance criterion the degree-based scheduler uses, applied to
    static ownership.
    """
    _check(workers)
    owner = np.zeros(graph.num_vertices, dtype=np.int64)
    loads = [0] * workers
    order = np.argsort(-graph.degrees, kind="stable")
    for v in order.tolist():
        w = loads.index(min(loads))
        owner[v] = w
        loads[w] += int(graph.degrees[v]) + 1
    return owner


def cut_arcs(graph: CSRGraph, owner: np.ndarray) -> int:
    """Number of arcs whose endpoints live on different workers."""
    src = graph.arc_source()
    return int(np.count_nonzero(owner[src] != owner[graph.dst]))


def _check(workers: int) -> None:
    if workers < 1:
        raise ValueError("workers must be >= 1")
