"""Communication accounting and cluster pricing for BSP execution.

The distributed baselines of §3.3 (PSCAN on MapReduce, SparkSCAN) pay for
what shared memory gets for free: every datum referenced across a
partition boundary is a message.  ``CommRecord`` tallies those messages
per superstep; ``ClusterSpec`` prices the whole BSP run — per-superstep
compute makespan plus network transfer plus per-round framework latency
(the job-scheduling overhead that dominates MapReduce rounds).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Superstep", "CommRecord", "ClusterSpec", "COMMODITY_CLUSTER"]


@dataclass
class Superstep:
    """One BSP round: per-worker compute cycles + exchanged bytes."""

    name: str
    compute_cycles: list[float]
    bytes_sent: int = 0
    messages: int = 0

    @property
    def max_compute(self) -> float:
        return max(self.compute_cycles) if self.compute_cycles else 0.0


@dataclass
class CommRecord:
    """Full trace of a distributed run."""

    workers: int
    supersteps: list[Superstep] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return sum(s.bytes_sent for s in self.supersteps)

    @property
    def total_messages(self) -> int:
        return sum(s.messages for s in self.supersteps)

    @property
    def num_supersteps(self) -> int:
        return len(self.supersteps)

    def bytes_by_phase(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for step in self.supersteps:
            out[step.name] = out.get(step.name, 0) + step.bytes_sent
        return out


@dataclass(frozen=True)
class ClusterSpec:
    """A priced commodity cluster for the BSP model."""

    name: str
    clock_hz: float
    #: aggregate network bandwidth available to the job, bytes/second.
    net_bandwidth: float
    #: fixed framework latency per superstep (job scheduling, shuffles).
    round_latency: float

    def superstep_seconds(self, step: Superstep) -> float:
        compute = step.max_compute / self.clock_hz
        transfer = step.bytes_sent / self.net_bandwidth
        return compute + transfer + self.round_latency

    def run_seconds(self, record: CommRecord) -> float:
        return sum(self.superstep_seconds(s) for s in record.supersteps)


#: A modest commodity cluster: the setting PSCAN [25] / SparkSCAN [26]
#: target.  The round latency is the characteristic MapReduce/Spark
#: per-stage overhead (job scheduling + shuffle materialization),
#: scaled down ~10^3x with the graphs like the shared-memory constants.
COMMODITY_CLUSTER = ClusterSpec(
    name="commodity cluster (1 GbE, MapReduce-style rounds)",
    clock_hz=2.3e9,
    net_bandwidth=125e6,  # 1 Gb/s
    round_latency=3e-3,
)
