"""Distributed structural clustering in the BSP/MapReduce style of
PSCAN [25] and SparkSCAN [26].

§3.3 dismisses the distributed algorithms in one clause — "incurring
communication overheads" — and this module makes that clause measurable.
The algorithm is exact (same clusters as everything else); what differs
is *where data lives*: vertices are partitioned across workers, and every
cross-partition reference becomes counted bytes in a
:class:`~repro.distributed.network.CommRecord`:

====  =======================  =============================================
step  superstep                 communication
====  =======================  =============================================
0     degree broadcast          the degree vector to every worker
1     adjacency exchange        N(v) shipped to each worker that must
                                intersect against it (once per (v, worker))
2     similarity + mirror       computed predicates for cut edges sent to
                                the opposite owner
3     role computation          local (roles need only own arcs)
4+    cluster label propagation min-label rounds over cut similar
                                core-core edges until a global fixpoint
last  membership assembly       (cluster, non-core) pairs for remote owners
====  =======================  =============================================

The returned record prices on a :class:`ClusterSpec`, whose per-round
framework latency and 1 GbE bandwidth reproduce why a 10-superstep BSP
job cannot compete with shared memory on this problem.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.context import RunContext
from ..core.result import ClusteringResult
from ..graph.csr import CSRGraph
from ..types import CORE, NONCORE, NSIM, SIM, UNKNOWN, ScanParams
from ..unionfind import UnionFind
from .network import CommRecord, Superstep
from .partition import (
    block_partition,
    degree_balanced_partition,
    hash_partition,
)

__all__ = ["distributed_scan", "PARTITIONERS"]

PARTITIONERS = {
    "block": block_partition,
    "hash": hash_partition,
    "degree": degree_balanced_partition,
}

_ID_BYTES = 8
_MSG_BYTES = 16  # (key, value) pair in a shuffle


def distributed_scan(
    graph: CSRGraph,
    params: ScanParams,
    workers: int = 4,
    partitioner: str = "block",
) -> tuple[ClusteringResult, CommRecord]:
    """Run BSP distributed SCAN; returns (exact clustering, comm record)."""
    if partitioner not in PARTITIONERS:
        raise ValueError(
            f"unknown partitioner {partitioner!r}; known: {sorted(PARTITIONERS)}"
        )
    t0 = time.perf_counter()
    ctx = RunContext(graph, params, kernel="merge")
    counter = ctx.engine.counter
    off, dst, adj, deg = ctx.off, ctx.dst, ctx.adj, ctx.deg
    sim, roles, mcn, rev = ctx.sim, ctx.roles, ctx.mcn, ctx.rev
    kernel_fn = ctx.engine.kernel
    mu = ctx.mu
    n = ctx.n
    owner = PARTITIONERS[partitioner](graph, workers)
    own = owner.tolist()
    record = CommRecord(workers=workers)

    # ---- Superstep 0: degree broadcast -----------------------------------
    record.supersteps.append(
        Superstep(
            "degree broadcast",
            compute_cycles=[float(n) for _ in range(workers)],
            bytes_sent=n * _ID_BYTES * max(workers - 1, 0),
            messages=max(workers - 1, 0),
        )
    )

    # ---- Superstep 1: adjacency exchange ---------------------------------
    # Owner of u computes edge (u, v) for u < v (after local predicate
    # pruning); it needs N(v), shipped once per (v, destination worker).
    compute_edges: list[list[tuple[int, int]]] = [[] for _ in range(workers)]
    shipped: set[tuple[int, int]] = set()
    ship_bytes = 0
    ship_msgs = 0
    prep_cycles = [0.0] * workers
    for u in range(n):
        w = own[u]
        for arc in range(off[u], off[u + 1]):
            v = dst[arc]
            prep_cycles[w] += 1
            if u >= v:
                continue
            c = mcn[arc]
            if c <= 2:
                sim[arc] = SIM
                sim[rev[arc]] = SIM
                continue
            if (deg[u] if deg[u] < deg[v] else deg[v]) + 2 < c:
                sim[arc] = NSIM
                sim[rev[arc]] = NSIM
                continue
            compute_edges[w].append((u, arc))
            if own[v] != w and (v, w) not in shipped:
                shipped.add((v, w))
                ship_bytes += deg[v] * _ID_BYTES + _MSG_BYTES
                ship_msgs += 1
    record.supersteps.append(
        Superstep(
            "adjacency exchange",
            compute_cycles=prep_cycles,
            bytes_sent=ship_bytes,
            messages=ship_msgs,
        )
    )

    # ---- Superstep 2: similarity computation + mirror shuffle ------------
    sim_cycles = [0.0] * workers
    mirror_bytes = 0
    mirror_msgs = 0
    for w in range(workers):
        before = counter.scalar_cmp + counter.bound_updates
        for u, arc in compute_edges[w]:
            v = dst[arc]
            state = SIM if kernel_fn(adj[u], adj[v], mcn[arc]) else NSIM
            sim[arc] = state
            sim[rev[arc]] = state
            if own[v] != w:
                mirror_bytes += _MSG_BYTES
                mirror_msgs += 1
        sim_cycles[w] = float(
            counter.scalar_cmp + counter.bound_updates - before
        )
    record.supersteps.append(
        Superstep(
            "similarity + mirror",
            compute_cycles=sim_cycles,
            bytes_sent=mirror_bytes,
            messages=mirror_msgs,
        )
    )

    # ---- Superstep 3: role computation (fully local) ---------------------
    role_cycles = [0.0] * workers
    for u in range(n):
        w = own[u]
        sd = 0
        for arc in range(off[u], off[u + 1]):
            role_cycles[w] += 1
            if sim[arc] == SIM:
                sd += 1
        roles[u] = CORE if sd >= mu else NONCORE
    record.supersteps.append(
        Superstep("role computation", compute_cycles=role_cycles)
    )

    # ---- Supersteps 4..k: cluster label propagation -----------------------
    # Per worker, intra-partition similar core-core edges collapse into
    # local components (a per-worker union-find, free of communication);
    # every round exchanges min labels over the cut similar core edges.
    uf = UnionFind(n)
    cut_core_arcs: list[tuple[int, int]] = []  # (u, v) with owners differing
    for u in range(n):
        if roles[u] != CORE:
            continue
        for arc in range(off[u], off[u + 1]):
            v = dst[arc]
            if v <= u or roles[v] != CORE or sim[arc] != SIM:
                continue
            if own[u] == own[v]:
                uf.union(u, v)
            else:
                cut_core_arcs.append((u, v))

    comp_label: dict[int, int] = {}
    for u in range(n):
        if roles[u] == CORE:
            root = uf.find(u)
            cur = comp_label.get(root)
            if cur is None or u < cur:
                comp_label[root] = u

    changed = True
    while changed:
        changed = False
        prop_cycles = [0.0] * workers
        round_bytes = 0
        round_msgs = 0
        for u, v in cut_core_arcs:
            # Both endpoints advertise their component labels.
            round_bytes += 2 * _MSG_BYTES
            round_msgs += 2
            prop_cycles[own[u]] += 1
            prop_cycles[own[v]] += 1
            ru, rv = uf.find(u), uf.find(v)
            lu, lv = comp_label[ru], comp_label[rv]
            if lu == lv:
                continue
            low = lu if lu < lv else lv
            if comp_label[ru] != low:
                comp_label[ru] = low
                changed = True
            if comp_label[rv] != low:
                comp_label[rv] = low
                changed = True
        record.supersteps.append(
            Superstep(
                "label propagation",
                compute_cycles=prop_cycles,
                bytes_sent=round_bytes,
                messages=round_msgs,
            )
        )

    # Components connected through cut edges share a final label; collapse
    # them for the canonical min-core-id labels.
    final_uf = UnionFind(n)
    for u in range(n):
        if roles[u] == CORE:
            final_uf.union(u, uf.find(u))
    for u, v in cut_core_arcs:
        final_uf.union(u, v)
    labels = np.full(n, -1, dtype=np.int64)
    cluster_id: dict[int, int] = {}
    for u in range(n):
        if roles[u] == CORE:
            root = final_uf.find(u)
            if root not in cluster_id:
                cluster_id[root] = u
            labels[u] = cluster_id[root]

    # ---- Final superstep: membership assembly ---------------------------
    pairs: list[tuple[int, int]] = []
    member_cycles = [0.0] * workers
    member_bytes = 0
    member_msgs = 0
    for u in range(n):
        if roles[u] != CORE:
            continue
        w = own[u]
        cid = int(labels[u])
        for arc in range(off[u], off[u + 1]):
            member_cycles[w] += 1
            v = dst[arc]
            if roles[v] == NONCORE and sim[arc] == SIM:
                pairs.append((cid, v))
                if own[v] != w:
                    member_bytes += _MSG_BYTES
                    member_msgs += 1
    record.supersteps.append(
        Superstep(
            "membership assembly",
            compute_cycles=member_cycles,
            bytes_sent=member_bytes,
            messages=member_msgs,
        )
    )

    result = ClusteringResult(
        algorithm=f"BSP-SCAN[{workers}w/{partitioner}]",
        params=params,
        roles=np.array(roles, dtype=np.int8),
        core_labels=labels,
        noncore_pairs=pairs,
    )
    record.wall_seconds = time.perf_counter() - t0  # type: ignore[attr-defined]
    return result, record
