"""Builders: normalization, dedup, canonical small graphs."""

import numpy as np
import pytest

from repro.graph import (
    complete_graph,
    cycle_graph,
    empty_graph,
    from_adjacency,
    from_edge_array,
    from_edges,
    from_networkx,
    path_graph,
    star_graph,
)


class TestFromEdges:
    def test_dedup_and_reverse_dedup(self):
        g = from_edges([(0, 1), (1, 0), (0, 1), (1, 2)])
        assert g.num_edges == 2

    def test_drops_self_loops(self):
        g = from_edges([(0, 0), (0, 1), (1, 1)])
        assert g.num_edges == 1
        g.validate()

    def test_num_vertices_extension(self):
        g = from_edges([(0, 1)], num_vertices=5)
        assert g.num_vertices == 5
        assert g.degree(4) == 0

    def test_num_vertices_too_small_rejected(self):
        with pytest.raises(ValueError):
            from_edges([(0, 5)], num_vertices=3)

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            from_edges([(-1, 2)])

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            from_edge_array(np.array([[1, 2, 3]]))

    def test_empty_input(self):
        g = from_edges([])
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_result_is_normalized(self):
        rng = np.random.default_rng(0)
        edges = rng.integers(0, 40, size=(300, 2))
        g = from_edge_array(edges)
        g.validate()


class TestOtherBuilders:
    def test_from_adjacency(self):
        g = from_adjacency([[1, 2], [0], [0], []])
        assert g.num_vertices == 4
        assert g.neighbors(0).tolist() == [1, 2]

    def test_from_networkx(self):
        nx = pytest.importorskip("networkx")
        nx_g = nx.karate_club_graph()
        g = from_networkx(nx_g)
        assert g.num_vertices == nx_g.number_of_nodes()
        assert g.num_edges == nx_g.number_of_edges()
        g.validate()

    def test_from_networkx_relabels(self):
        nx = pytest.importorskip("networkx")
        nx_g = nx.Graph([("c", "a"), ("a", "b")])
        g = from_networkx(nx_g)
        # sorted labels: a=0, b=1, c=2
        assert g.has_edge(0, 2) and g.has_edge(0, 1)


class TestCanonicalGraphs:
    def test_empty(self):
        g = empty_graph(4)
        assert g.num_vertices == 4 and g.num_edges == 0

    def test_complete(self):
        g = complete_graph(5)
        assert g.num_edges == 10
        assert all(g.degree(u) == 4 for u in range(5))

    def test_path(self):
        g = path_graph(4)
        assert g.num_edges == 3
        assert g.degree(0) == 1 and g.degree(1) == 2

    def test_cycle(self):
        g = cycle_graph(5)
        assert g.num_edges == 5
        assert all(g.degree(u) == 2 for u in range(5))

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(6)
        assert g.num_vertices == 7
        assert g.degree(0) == 6
        assert all(g.degree(u) == 1 for u in range(1, 7))
