"""ClusteringResult save/load round trips."""

import numpy as np
import pytest

from repro.core import ClusteringResult, ppscan
from repro.graph.generators import erdos_renyi
from repro.types import ScanParams


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        g = erdos_renyi(50, 220, seed=5)
        result = ppscan(g, ScanParams(0.4, 2))
        path = tmp_path / "clustering.npz"
        result.save(path)
        loaded = ClusteringResult.load(path)
        assert loaded.same_clustering(result)
        assert loaded.algorithm == result.algorithm
        assert loaded.params == result.params

    def test_record_not_persisted(self, tmp_path):
        g = erdos_renyi(30, 100, seed=6)
        result = ppscan(g, ScanParams(0.5, 2))
        path = tmp_path / "c.npz"
        result.save(path)
        loaded = ClusteringResult.load(path)
        assert loaded.record is None

    def test_empty_clustering_roundtrip(self, tmp_path):
        g = erdos_renyi(20, 30, seed=7)
        result = ppscan(g, ScanParams(0.99, 10))
        assert result.num_clusters == 0
        path = tmp_path / "empty.npz"
        result.save(path)
        loaded = ClusteringResult.load(path)
        assert loaded.same_clustering(result)

    def test_loaded_supports_queries(self, tmp_path):
        g = erdos_renyi(40, 180, seed=8)
        result = ppscan(g, ScanParams(0.35, 2))
        path = tmp_path / "q.npz"
        result.save(path)
        loaded = ClusteringResult.load(path)
        assert loaded.clusters().keys() == result.clusters().keys()
        assert np.array_equal(loaded.classify(g), result.classify(g))
