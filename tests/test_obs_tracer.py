"""Span tracer: nesting, ambient install, and the zero-overhead path."""

import pytest

from repro.core.ppscan import ppscan
from repro.graph.generators import erdos_renyi
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    NullTracer,
    Tracer,
    current_tracer,
    use_tracer,
)
from repro.types import ScanParams


class TestSpanNesting:
    def test_start_end_records_span(self):
        tracer = Tracer()
        span = tracer.start_span("phase", lane=0, tasks=3)
        tracer.end_span(span)
        assert [s.name for s in tracer.spans] == ["phase"]
        assert span.attrs == {"tasks": 3}
        assert span.end >= span.begin
        assert span.depth == 0
        assert span.parent_id == -1

    def test_nesting_tracks_depth_and_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.depth == 0
        assert inner.depth == 1
        assert inner.parent_id == outer.span_id

    def test_children_within_parent_interval(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        parent, child = by_name["parent"], by_name["child"]
        assert parent.begin <= child.begin
        assert child.end <= parent.end
        assert child.lane == parent.lane

    def test_end_span_closes_deeper_orphans(self):
        tracer = Tracer()
        outer = tracer.start_span("outer")
        tracer.start_span("leaked")  # never explicitly ended
        tracer.end_span(outer)
        names = {s.name for s in tracer.spans}
        assert names == {"outer", "leaked"}
        assert all(s.end >= s.begin for s in tracer.spans)
        assert tracer._stacks[0] == []

    def test_lanes_are_independent_stacks(self):
        tracer = Tracer()
        a = tracer.start_span("a", lane=1)
        b = tracer.start_span("b", lane=2)
        assert a.depth == 0 and b.depth == 0
        assert b.parent_id == -1
        tracer.end_span(a)
        tracer.end_span(b)
        assert tracer.lanes() == [1, 2]

    def test_add_span_preserves_given_interval(self):
        tracer = Tracer()
        span = tracer.add_span("task", 1.0, 3.5, lane=4, depth=1, beg=0)
        assert span.duration == pytest.approx(2.5)
        assert span.lane == 4
        assert tracer.lanes() == [4]

    def test_sorted_spans_parent_before_child(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        names = [s.name for s in tracer.sorted_spans()]
        assert names == ["parent", "child"]

    def test_well_formed_after_real_run(self):
        graph = erdos_renyi(60, 240, seed=3)
        tracer = Tracer()
        with use_tracer(tracer):
            ppscan(graph, ScanParams(eps=0.4, mu=3))
        assert all(not stack for stack in tracer._stacks.values())
        spans = {s.span_id: s for s in tracer.spans}
        for span in tracer.spans:
            assert span.end >= span.begin
            if span.parent_id != -1 and span.parent_id in spans:
                parent = spans[span.parent_id]
                assert parent.lane == span.lane
                assert parent.begin <= span.begin
                assert span.end <= parent.end
        roots = [s for s in tracer.spans if s.name == "ppscan"]
        assert len(roots) == 1
        assert roots[0].attrs["exec_mode"] == "scalar"


class TestAmbientTracer:
    def test_default_is_null(self):
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
            inner = Tracer()
            with use_tracer(inner):
                assert current_tracer() is inner
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_tracer(Tracer()):
                raise RuntimeError("boom")
        assert current_tracer() is NULL_TRACER


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer.enabled is True

    def test_all_operations_are_noops(self):
        null = NullTracer()
        span = null.start_span("x", lane=3, attr=1)
        assert null.end_span(span) is span
        with null.span("y") as handle:
            assert handle is span  # the shared sentinel span
        null.add_span("z", 0.0, 1.0)
        null.count("c", 5)
        null.gauge("g", 1.0)
        null.observe("h", 2.0)
        assert null.spans == []
        assert null.lanes() == []
        assert null.sorted_spans() == []

    def test_null_tracer_holds_no_registry(self):
        assert NULL_TRACER.metrics is None


class TestMetricsShortcuts:
    def test_count_gauge_observe(self):
        tracer = Tracer()
        tracer.count("arcs", 3)
        tracer.count("arcs", 2)
        tracer.gauge("wall", 1.5)
        tracer.observe("batch", 10.0)
        tracer.observe("batch", 20.0)
        exported = tracer.metrics.as_dict()
        assert exported["arcs"] == 5
        assert exported["wall"] == 1.5
        assert exported["batch.count"] == 2
        assert exported["batch.mean"] == pytest.approx(15.0)

    def test_custom_registry(self):
        registry = MetricsRegistry()
        tracer = Tracer(metrics=registry)
        tracer.count("x")
        assert registry.as_dict() == {"x": 1}


class TestZeroOpInvariance:
    """Instrumentation must not perturb the OpCounter-pinned tallies."""

    @pytest.mark.parametrize("exec_mode", ["scalar", "batched"])
    def test_traced_run_has_identical_op_totals(self, exec_mode):
        graph = erdos_renyi(80, 320, seed=7)
        params = ScanParams(eps=0.5, mu=3)
        plain = ppscan(graph, params, exec_mode=exec_mode)
        tracer = Tracer()
        with use_tracer(tracer):
            traced = ppscan(graph, params, exec_mode=exec_mode)
        assert traced.record.total().as_dict() == plain.record.total().as_dict()
        assert traced.same_clustering(plain)
        assert len(tracer.spans) > 0

    @pytest.mark.parametrize("exec_mode", ["scalar", "batched"])
    def test_repeat_traced_runs_emit_identical_metric_totals(self, exec_mode):
        graph = erdos_renyi(80, 320, seed=11)
        params = ScanParams(eps=0.4, mu=3)
        exports = []
        for _ in range(2):
            tracer = Tracer()
            with use_tracer(tracer):
                ppscan(graph, params, exec_mode=exec_mode)
            exports.append(tracer.metrics.as_dict())
        assert exports[0] == exports[1]

    def test_batched_dispatch_counters_are_consistent(self):
        graph = erdos_renyi(80, 320, seed=5)
        tracer = Tracer()
        with use_tracer(tracer):
            ppscan(graph, ScanParams(eps=0.4, mu=3), exec_mode="batched")
        m = tracer.metrics.as_dict()
        assert m["engine.arcs"] == (
            m["engine.arcs_trivial"]
            + m["engine.arcs_scalar"]
            + m["engine.arcs_bulk"]
        )
        assert m["engine.batches"] == m["engine.batch_size.count"]
        assert m["batch.calls"] >= 1
