"""Service durability: WAL, crash recovery, deadlines, drain, idle close.

The WAL and recovery layers are tested directly (torn tails, corrupt
lines, lsn continuity across compaction, fail-stop on broken chains),
then end to end through a real :class:`~repro.service.ClusteringService`
over TCP: a simulated ``kill -9`` (the first service is abandoned
without ``stop()``), a restart against the same WAL directory, and
bit-for-bit comparison of every re-queried (ε, µ) point.  The seeded
in-process crash points use ``exit_fn`` so the dying "process" is just a
raised exception and the WAL directory stays inspectable.
"""

from __future__ import annotations

import asyncio
import json
import threading

import numpy as np
import pytest

from repro import api
from repro.cache import graph_fingerprint
from repro.graph.generators import erdos_renyi
from repro.service import (
    ClusteringService,
    GraphRegistry,
    RecoveryError,
    ServiceWAL,
    WALCrashPoint,
    recover,
)
from repro.streaming import EditBatch
from repro.types import ScanParams


def _graph(seed=9):
    return erdos_renyi(60, 240, seed=seed)


def _edges(graph):
    return [[int(u), int(v)] for u, v in graph.edge_list()]


class _Died(RuntimeError):
    """Stand-in for os._exit in in-process crash-point tests."""


def _raise_exit(code):
    raise _Died(str(code))


# ---------------------------------------------------------------------------
# WAL unit tests
# ---------------------------------------------------------------------------


class TestServiceWAL:
    def test_append_read_roundtrip_and_lsn(self, tmp_path):
        wal = ServiceWAL(tmp_path / "wal")
        first = wal.append("submit", fingerprint="aa", label="one")
        second = wal.append("delete", fingerprint="aa")
        assert [first["lsn"], second["lsn"]] == [1, 2]
        records = ServiceWAL(tmp_path / "wal").read_records()
        assert [(r["lsn"], r["op"]) for r in records] == [
            (1, "submit"),
            (2, "delete"),
        ]
        assert records[0]["label"] == "one"

    def test_unknown_op_rejected(self, tmp_path):
        wal = ServiceWAL(tmp_path / "wal")
        with pytest.raises(ValueError):
            wal.append("mystery", fingerprint="aa")

    def test_corrupt_line_is_clean_skip(self, tmp_path):
        wal = ServiceWAL(tmp_path / "wal")
        wal.append("submit", fingerprint="aa")
        wal.append("submit", fingerprint="bb")
        raw = wal.log_path.read_bytes()
        wal.log_path.write_bytes(raw.replace(b'"bb"', b'"cc"', 1))
        fresh = ServiceWAL(tmp_path / "wal")
        records = fresh.read_records()
        assert [r["fingerprint"] for r in records] == ["aa"]
        assert fresh.last_skipped == 1

    def test_torn_tail_repaired_on_next_append(self, tmp_path):
        wal = ServiceWAL(tmp_path / "wal")
        wal.append("submit", fingerprint="aa")
        with open(wal.log_path, "ab") as fh:
            fh.write(b'{"schema": 1, "lsn": 2, "op": "sub')  # torn write
        wal2 = ServiceWAL(tmp_path / "wal")
        assert wal2.lsn == 1  # torn line does not advance the lsn
        wal2.append("submit", fingerprint="bb")
        records = wal2.read_records()
        assert [(r["lsn"], r["fingerprint"]) for r in records] == [
            (1, "aa"),
            (2, "bb"),
        ]
        assert wal2.last_skipped == 1  # the torn line stayed a clean skip

    def test_lsn_survives_compaction(self, tmp_path):
        wal = ServiceWAL(tmp_path / "wal")
        wal.append("submit", fingerprint="aa")
        wal.append("submit", fingerprint="bb")
        wal.compact({"graphs": []})
        assert wal.read_records() == []  # log truncated
        third = wal.append("delete", fingerprint="aa")
        assert third["lsn"] == 3  # monotone across the truncation
        fresh = ServiceWAL(tmp_path / "wal")
        assert fresh.lsn == 3
        assert fresh.snapshot_lsn() == 2
        assert [r["lsn"] for r in fresh.replay_records()] == [3]

    def test_stale_records_filtered_after_compaction(self, tmp_path):
        # Simulate the post-compact crash window: snapshot replaced but
        # the log never truncated.
        wal = ServiceWAL(tmp_path / "wal")
        wal.append("submit", fingerprint="aa")
        log_bytes = wal.log_path.read_bytes()
        wal.compact({"graphs": []})
        wal.log_path.write_bytes(log_bytes)  # stale log reappears
        fresh = ServiceWAL(tmp_path / "wal")
        assert fresh.replay_records() == []  # lsn filter drops them
        assert fresh.lsn == 1

    def test_corrupt_snapshot_degrades_to_none(self, tmp_path):
        wal = ServiceWAL(tmp_path / "wal")
        wal.append("submit", fingerprint="aa")
        wal.compact({"graphs": []})
        wal.snapshot_path.write_text('{"schema": 1, "lsn": "nope"}')
        fresh = ServiceWAL(tmp_path / "wal")
        assert fresh.load_snapshot() is None
        assert fresh.snapshot_lsn() == 0
        # Degrades to full-log replay, never an error.
        assert fresh.replay_records() == fresh.read_records()

    def test_graph_spill_load_verify_prune(self, tmp_path):
        wal = ServiceWAL(tmp_path / "wal")
        graph = _graph()
        fp = graph_fingerprint(graph)
        wal.spill_graph(fp, graph)
        loaded = wal.load_graph(fp)
        assert graph_fingerprint(loaded) == fp
        with pytest.raises(FileNotFoundError):
            wal.load_graph("0" * 40)
        # A payload that hashes differently is external damage.
        other = _graph(seed=11)
        wal.graph_path("feedface").write_bytes(
            wal.graph_path(fp).read_bytes()
        )
        del other
        with pytest.raises(ValueError):
            wal.load_graph("feedface")
        assert wal.prune_graphs({fp}) == 1  # feedface.bin dropped
        assert wal.graph_path(fp).exists()

    def test_crash_point_from_env(self):
        assert WALCrashPoint.from_env({}).point is None
        armed = WALCrashPoint.from_env({"REPRO_WAL_CRASH": "mid-append:3"})
        assert (armed.point, armed.target) == ("mid-append", 3)
        for bad in ("mid-append", "mid-append:x", "nope:1", ""):
            assert (
                WALCrashPoint.from_env({"REPRO_WAL_CRASH": bad}).point is None
            )
        with pytest.raises(ValueError):
            WALCrashPoint(point="not-a-point", target=1)

    def test_mid_append_crash_leaves_torn_skip(self, tmp_path):
        wal = ServiceWAL(
            tmp_path / "wal",
            crash_point=WALCrashPoint("mid-append", 2, exit_fn=_raise_exit),
        )
        wal.append("submit", fingerprint="aa")
        with pytest.raises(_Died):
            wal.append("submit", fingerprint="bb")
        survivor = ServiceWAL(tmp_path / "wal")
        assert [r["fingerprint"] for r in survivor.read_records()] == ["aa"]
        assert survivor.last_skipped == 1
        assert survivor.lsn == 1

    def test_post_append_crash_record_durable(self, tmp_path):
        wal = ServiceWAL(
            tmp_path / "wal",
            crash_point=WALCrashPoint("post-append", 1, exit_fn=_raise_exit),
        )
        with pytest.raises(_Died):
            wal.append("submit", fingerprint="aa")
        survivor = ServiceWAL(tmp_path / "wal")
        assert [r["fingerprint"] for r in survivor.read_records()] == ["aa"]
        assert survivor.last_skipped == 0

    def test_compaction_crash_points(self, tmp_path):
        wal = ServiceWAL(
            tmp_path / "wal",
            crash_point=WALCrashPoint("mid-compact", 1, exit_fn=_raise_exit),
        )
        wal.append("submit", fingerprint="aa")
        with pytest.raises(_Died):
            wal.compact({"graphs": []})
        # mid-compact: no snapshot replaced, full log intact.
        survivor = ServiceWAL(tmp_path / "wal")
        assert survivor.load_snapshot() is None
        assert [r["lsn"] for r in survivor.replay_records()] == [1]

        wal = ServiceWAL(
            tmp_path / "wal",
            crash_point=WALCrashPoint("post-compact", 1, exit_fn=_raise_exit),
        )
        with pytest.raises(_Died):
            wal.compact({"graphs": []})
        # post-compact: snapshot durable, stale log filtered by lsn.
        survivor = ServiceWAL(tmp_path / "wal")
        assert survivor.snapshot_lsn() == 1
        assert survivor.replay_records() == []


# ---------------------------------------------------------------------------
# Recovery unit tests
# ---------------------------------------------------------------------------


def _log_update(wal, handle, batch, key=None):
    """Apply ``batch`` to ``handle`` and log it the way the server does."""
    old_fp = handle.fingerprint
    report = handle.apply_updates(EditBatch.coerce(batch))
    wal.append(
        "update",
        old_fp=old_fp,
        new_fp=report.fingerprint,
        idempotency_key=key,
        edits=EditBatch.coerce(batch).as_triples(),
        response={"fingerprint": report.fingerprint} if key else None,
    )
    return report


class TestRecovery:
    def test_replays_submit_and_update_chain(self, tmp_path):
        wal = ServiceWAL(tmp_path / "wal")
        graph = _graph()
        fp = graph_fingerprint(graph)
        reference = api.Session()
        ref_handle = reference.open(graph)
        wal.spill_graph(fp, graph)
        wal.append("submit", fingerprint=fp, label="er")
        batch = {"insert": [[0, 59], [1, 58]], "remove": [[0, 1]]}
        report = _log_update(wal, ref_handle, batch, key="k-1")
        expected = ref_handle.cluster(ScanParams(0.5, 2))

        session, registry = api.Session(), GraphRegistry()
        out, idempotency = recover(wal, session=session, registry=registry)
        assert out.submissions_replayed == 1
        assert out.updates_replayed == 1
        assert registry.fingerprints() == [report.fingerprint]
        assert idempotency == {"k-1": {"fingerprint": report.fingerprint}}
        recovered = registry.peek(report.fingerprint)
        got = recovered.cluster(ScanParams(0.5, 2))
        assert np.array_equal(got.roles, expected.roles)
        assert np.array_equal(got.core_labels, expected.core_labels)

    def test_missing_payload_fails_stop(self, tmp_path):
        wal = ServiceWAL(tmp_path / "wal")
        wal.append("submit", fingerprint="deadbeef", label=None)
        with pytest.raises(RecoveryError, match="cannot restore"):
            recover(wal, session=api.Session(), registry=GraphRegistry())

    def test_broken_fingerprint_chain_fails_stop(self, tmp_path):
        wal = ServiceWAL(tmp_path / "wal")
        wal.append(
            "update",
            old_fp="absent",
            new_fp="whatever",
            idempotency_key=None,
            edits=[["+", 0, 1]],
            response=None,
        )
        with pytest.raises(RecoveryError, match="not resident"):
            recover(wal, session=api.Session(), registry=GraphRegistry())

    def test_divergent_replay_fails_stop(self, tmp_path):
        wal = ServiceWAL(tmp_path / "wal")
        graph = _graph()
        fp = graph_fingerprint(graph)
        wal.spill_graph(fp, graph)
        wal.append("submit", fingerprint=fp, label=None)
        wal.append(
            "update",
            old_fp=fp,
            new_fp="1" * 40,  # a fingerprint replay cannot land on
            idempotency_key=None,
            edits=[["+", 0, 59]],
            response=None,
        )
        with pytest.raises(RecoveryError, match="non-deterministic"):
            recover(wal, session=api.Session(), registry=GraphRegistry())

    def test_delete_and_evict_records_replay(self, tmp_path):
        wal = ServiceWAL(tmp_path / "wal")
        a, b = _graph(seed=1), _graph(seed=2)
        fa, fb = graph_fingerprint(a), graph_fingerprint(b)
        wal.spill_graph(fa, a)
        wal.append("submit", fingerprint=fa, label="a")
        wal.spill_graph(fb, b)
        wal.append("submit", fingerprint=fb, label="b")
        wal.append("evict", fingerprint=fa)
        out, _ = recover(
            wal, session=api.Session(), registry=(registry := GraphRegistry())
        )
        assert registry.fingerprints() == [fb]
        assert out.evictions_replayed == 1

    def test_snapshot_rewarming_points(self, tmp_path):
        wal = ServiceWAL(tmp_path / "wal")
        graph = _graph()
        fp = graph_fingerprint(graph)
        wal.spill_graph(fp, graph)
        params = ScanParams(0.45, 3)
        frac = params.eps_fraction
        wal.compact(
            {
                "graphs": [
                    {
                        "fingerprint": fp,
                        "label": "er",
                        "batches_applied": 0,
                        "points": [
                            [frac.numerator, frac.denominator, params.mu]
                        ],
                    }
                ],
                "idempotency": {"k": {"fingerprint": fp}},
            }
        )
        session, registry = api.Session(), GraphRegistry()
        out, idempotency = recover(wal, session=session, registry=registry)
        assert out.warm_points == 1
        assert idempotency == {"k": {"fingerprint": fp}}
        handle = registry.peek(fp)
        # The point was re-materialized: lookup serves without computing.
        assert handle.lookup(params) is not None


# ---------------------------------------------------------------------------
# Service-level durability over real TCP
# ---------------------------------------------------------------------------


async def _request(port, method, target, body=None, headers=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b"" if body is None else json.dumps(body).encode()
    head = [
        f"{method} {target} HTTP/1.1",
        "Host: t",
        "Content-Type: application/json",
        f"Content-Length: {len(payload)}",
    ]
    for name, value in (headers or {}).items():
        head.append(f"{name}: {value}")
    head.append("Connection: close")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    head_raw, _, body_raw = raw.partition(b"\r\n\r\n")
    resp_headers = {}
    for line in head_raw.decode().split("\r\n")[1:]:
        name, _, value = line.partition(": ")
        resp_headers[name.lower()] = value
    return (
        int(head_raw.split()[1]),
        json.loads(body_raw) if body_raw else None,
        resp_headers,
    )


def _abandon(service):
    """Simulate kill -9: tear the sockets down without stop()'s flushes."""
    if service._server is not None:
        service._server.close()
        service._server = None
    service._executor.shutdown(wait=True)
    if service._wal_executor is not None:
        service._wal_executor.shutdown(wait=True)


class TestServiceDurability:
    def test_crash_recovery_bit_identical_and_idempotent(self, tmp_path):
        graph = _graph()
        batch = {"insert": [[0, 59], [2, 57]]}
        state: dict = {}

        async def phase1():
            service = ClusteringService(
                wal_dir=tmp_path / "wal", snapshot_every=1000
            )
            await service.start()
            port = service.port
            _, info, _ = await _request(
                port, "POST", "/graphs", {"edges": _edges(graph)}
            )
            fp = info["fingerprint"]
            status, up, _ = await _request(
                port,
                "POST",
                f"/graphs/{fp}/updates",
                batch,
                {"Idempotency-Key": "b-1"},
            )
            assert status == 200 and "idempotent_replay" not in up
            new_fp = up["fingerprint"]
            status, labels, _ = await _request(
                port,
                "GET",
                f"/graphs/{new_fp}/cluster?eps=0.5&mu=2&include=labels",
            )
            assert status == 200
            state.update(fp=fp, new_fp=new_fp, labels=labels, response=up)
            _abandon(service)  # no drain, no stop: this is the "crash"

        asyncio.run(phase1())

        async def phase2():
            service = ClusteringService(wal_dir=tmp_path / "wal")
            await service.start()
            port = service.port
            report = service.recovery_report
            assert report.records_replayed == 2  # submit + update
            assert report.fingerprints == [state["new_fp"]]
            status, again, _ = await _request(
                port,
                "GET",
                f"/graphs/{state['new_fp']}/cluster"
                "?eps=0.5&mu=2&include=labels",
            )
            assert status == 200
            for field in ("roles", "core_labels", "noncore_pairs"):
                assert again[field] == state["labels"][field]
            # Duplicate Idempotency-Key: replayed, not re-applied.
            status, replay, headers = await _request(
                port,
                "POST",
                f"/graphs/{state['new_fp']}/updates",
                batch,
                {"Idempotency-Key": "b-1"},
            )
            assert status == 200 and replay["idempotent_replay"] is True
            assert replay["fingerprint"] == state["new_fp"]
            assert headers.get("idempotency-replayed") == "true"
            # The pre-update fingerprint is gone (the chain re-keyed it).
            status, _, _ = await _request(
                port, "GET", f"/graphs/{state['fp']}/cluster?eps=0.5&mu=2"
            )
            assert status == 404
            await service.stop()

        asyncio.run(phase2())

    def test_deadline_504_and_work_continues(self, tmp_path):
        graph = _graph()
        gate = threading.Event()

        async def drive(service, port):
            _, info, _ = await _request(
                port, "POST", "/graphs", {"edges": _edges(graph)}
            )
            fp = info["fingerprint"]
            loop = asyncio.get_running_loop()
            blocker = loop.run_in_executor(service._executor, gate.wait)
            await asyncio.sleep(0.05)
            status, payload, headers = await _request(
                port, "GET", f"/graphs/{fp}/cluster?eps=0.41&mu=3&timeout=0.2"
            )
            assert status == 504, payload
            assert "deadline" in payload["error"]
            assert headers.get("retry-after") == "1"
            assert service.counters["timeouts"] == 1
            # Malformed timeouts are 400s, not silent defaults.
            status, _, _ = await _request(
                port, "GET", f"/graphs/{fp}/cluster?eps=0.41&mu=3&timeout=-1"
            )
            assert status == 400
            gate.set()
            await blocker
            while service._inflight:
                await asyncio.sleep(0.01)
            # The timed-out work completed server-side: retry is warm.
            status, retry, _ = await _request(
                port, "GET", f"/graphs/{fp}/cluster?eps=0.41&mu=3"
            )
            assert status == 200 and retry["warm"] is True

        async def go():
            service = ClusteringService(
                wal_dir=tmp_path / "wal",
                max_concurrent_queries=1,
                executor_workers=1,
            )
            await service.start()
            try:
                await drive(service, service.port)
            finally:
                gate.set()
                await service.stop()

        asyncio.run(go())

    def test_update_deadline_commits_then_replays(self, tmp_path):
        graph = _graph()
        gate = threading.Event()
        batch = {"insert": [[0, 59]]}

        async def drive(service, port):
            _, info, _ = await _request(
                port, "POST", "/graphs", {"edges": _edges(graph)}
            )
            fp = info["fingerprint"]
            loop = asyncio.get_running_loop()
            blocker = loop.run_in_executor(service._executor, gate.wait)
            await asyncio.sleep(0.05)
            status, payload, _ = await _request(
                port,
                "POST",
                f"/graphs/{fp}/updates?timeout=0.2",
                batch,
                {"Idempotency-Key": "slow-1"},
            )
            assert status == 504, payload
            gate.set()
            await blocker
            # The transaction was shielded from the client's deadline:
            # it committed and logged; the retry replays the original.
            for _ in range(200):
                if "slow-1" in service._idempotency:
                    break
                await asyncio.sleep(0.01)
            status, replay, _ = await _request(
                port,
                "POST",
                f"/graphs/{fp}/updates",
                batch,
                {"Idempotency-Key": "slow-1"},
            )
            assert status == 200 and replay["idempotent_replay"] is True
            assert service.counters["updates"] == 1  # applied exactly once

        async def go():
            service = ClusteringService(
                wal_dir=tmp_path / "wal",
                max_concurrent_queries=1,
                executor_workers=1,
            )
            await service.start()
            try:
                await drive(service, service.port)
            finally:
                gate.set()
                await service.stop()

        asyncio.run(go())

    def test_readyz_drain_and_zero_replay_restart(self, tmp_path):
        graph = _graph()
        gate = threading.Event()

        async def go():
            service = ClusteringService(
                wal_dir=tmp_path / "wal",
                max_concurrent_queries=1,
                executor_workers=1,
            )
            await service.start()
            port = service.port
            try:
                status, ready, _ = await _request(port, "GET", "/readyz")
                assert status == 200 and ready["state"] == "serving"
                _, info, _ = await _request(
                    port, "POST", "/graphs", {"edges": _edges(graph)}
                )
                fp = info["fingerprint"]
                loop = asyncio.get_running_loop()
                blocker = loop.run_in_executor(service._executor, gate.wait)
                await asyncio.sleep(0.05)
                inflight = asyncio.create_task(
                    _request(port, "GET", f"/graphs/{fp}/cluster?eps=0.5&mu=2")
                )
                await asyncio.sleep(0.1)
                drain = asyncio.create_task(
                    service.drain(grace_seconds=10.0)
                )
                while service.state != "draining":
                    await asyncio.sleep(0.01)
                gate.set()
                await blocker
                status, payload, _ = await inflight
                # In-flight work during a drain completes (or would get
                # a structured 503 past the grace) — never a dropped
                # connection.
                assert status in (200, 503), payload
                summary = await drain
                assert summary["snapshot_written"] is True
                assert (tmp_path / "wal" / "snapshot.json").exists()
            finally:
                gate.set()
                await service.stop()

        asyncio.run(go())

        async def restart():
            service = ClusteringService(wal_dir=tmp_path / "wal")
            await service.start()
            try:
                report = service.recovery_report
                # The final snapshot covered everything: zero replay.
                assert report.records_replayed == 0
                assert len(report.fingerprints) == 1
            finally:
                await service.stop()

        asyncio.run(restart())

    def test_draining_rejects_new_requests_structured(self, tmp_path):
        graph = _graph()
        gate = threading.Event()

        async def go():
            service = ClusteringService(
                wal_dir=tmp_path / "wal",
                max_concurrent_queries=1,
                executor_workers=1,
                drain_grace_seconds=5.0,
            )
            await service.start()
            port = service.port
            try:
                _, info, _ = await _request(
                    port, "POST", "/graphs", {"edges": _edges(graph)}
                )
                fp = info["fingerprint"]
                # Open a keep-alive connection while still serving.
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                loop = asyncio.get_running_loop()
                blocker = loop.run_in_executor(service._executor, gate.wait)
                await asyncio.sleep(0.05)
                # Hold the drain open with one in-flight cold query.
                inflight = asyncio.create_task(
                    _request(
                        port, "GET", f"/graphs/{fp}/cluster?eps=0.47&mu=2"
                    )
                )
                await asyncio.sleep(0.1)
                drain = asyncio.create_task(service.drain())
                while service.state != "draining":
                    await asyncio.sleep(0.01)
                # A request on the pre-existing connection: structured
                # 503 + Connection: close, not a dropped socket.
                writer.write(
                    f"GET /graphs/{fp}/cluster?eps=0.5&mu=2 HTTP/1.1\r\n"
                    "Host: t\r\n\r\n".encode()
                )
                await writer.drain()
                raw = await reader.read()
                assert b"503" in raw.split(b"\r\n", 1)[0]
                assert b"Connection: close" in raw
                gate.set()
                await blocker
                status, _, _ = await inflight
                assert status in (200, 503)
                summary = await drain
                assert summary["drained_inflight"] >= 1
                writer.close()
            finally:
                gate.set()
                await service.stop()

        asyncio.run(go())

    def test_idle_timeout_closes_connection(self):
        async def go():
            service = ClusteringService(idle_timeout_seconds=0.2)
            await service.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", service.port
                )
                # Send nothing: the slow-loris defense reclaims the slot.
                data = await asyncio.wait_for(reader.read(), timeout=5.0)
                assert data == b""  # server closed cleanly
                assert service.counters["idle_closed"] == 1
                writer.close()
            finally:
                await service.stop()

        asyncio.run(go())

    def test_admin_compact_without_wal_is_400(self):
        async def go():
            service = ClusteringService()
            await service.start()
            try:
                status, payload, _ = await _request(
                    service.port, "POST", "/admin/compact"
                )
                assert status == 400
                assert "wal" in payload["error"].lower()
            finally:
                await service.stop()

        asyncio.run(go())
