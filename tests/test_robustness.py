"""Failure injection and robustness: error propagation, odd inputs."""

import numpy as np
import pytest

from repro.core import ppscan
from repro.graph import from_edges
from repro.graph.generators import erdos_renyi
from repro.metrics import TaskCost
from repro.parallel import ProcessBackend, SerialBackend
from repro.types import ScanParams


class TestBackendFailurePropagation:
    def test_serial_task_exception_propagates(self):
        def bad_task(beg, end):
            raise RuntimeError("injected task failure")

        with pytest.raises(RuntimeError, match="injected"):
            SerialBackend().run_phase([(0, 1)], bad_task, lambda w: None)

    def test_process_task_exception_propagates(self):
        def bad_task(beg, end):
            if beg == 2:
                raise RuntimeError("injected worker failure")
            return None, TaskCost()

        with pytest.raises(RuntimeError, match="injected"):
            ProcessBackend(workers=2).run_phase(
                [(0, 1), (2, 3), (4, 5)], bad_task, lambda w: None
            )

    def test_commit_exception_propagates(self):
        def commit(writes):
            raise ValueError("injected commit failure")

        with pytest.raises(ValueError, match="commit"):
            SerialBackend().run_phase(
                [(0, 1)], lambda b, e: (None, TaskCost()), commit
            )


class TestOddInputs:
    def test_isolated_only_graph(self):
        g = from_edges([], num_vertices=100)
        result = ppscan(g, ScanParams(0.5, 1))
        assert result.num_clusters == 0

    def test_two_vertices_one_edge_every_param(self):
        g = from_edges([(0, 1)])
        for eps in (0.01, 0.5, 0.99, 1.0):
            for mu in (1, 2, 3):
                result = ppscan(g, ScanParams(eps, mu))
                # sigma(0,1) = 2/2 = 1 >= eps always; core iff mu == 1.
                expected_clusters = 1 if mu == 1 else 0
                assert result.num_clusters == expected_clusters, (eps, mu)

    def test_very_small_eps(self):
        g = erdos_renyi(40, 160, seed=1)
        result = ppscan(g, ScanParams(1e-3, 1))
        # Everything is similar at eps ~ 0: each component one cluster.
        assert result.num_cores == 40

    def test_eps_snapping_consistency(self):
        """Float eps that isn't exactly representable snaps to the same
        rational everywhere — results identical for 0.3 vs 0.29999999999."""
        g = erdos_renyi(50, 220, seed=2)
        a = ppscan(g, ScanParams(0.3, 2))
        b = ppscan(g, ScanParams(0.29999999999999993, 2))
        assert a.same_clustering(b)

    def test_duplicate_heavy_input_normalized(self):
        edges = [(0, 1)] * 50 + [(1, 0)] * 50 + [(1, 2)]
        g = from_edges(edges)
        assert g.num_edges == 2
        ppscan(g, ScanParams(0.5, 1))  # must not crash

    def test_self_loop_heavy_input(self):
        g = from_edges([(i, i) for i in range(10)] + [(0, 1)])
        assert g.num_edges == 1


class TestDeterminism:
    def test_ppscan_record_deterministic(self):
        g = erdos_renyi(60, 250, seed=3)
        params = ScanParams(0.4, 2)
        a = ppscan(g, params).record
        b = ppscan(g, params).record
        assert a.compsim_invocations == b.compsim_invocations
        for sa, sb in zip(a.stages, b.stages):
            assert sa.total().__dict__ == sb.total().__dict__

    def test_experiment_data_deterministic(self):
        from repro.bench import clear_caches
        from repro.bench.experiments import fig4_invocations

        clear_caches()
        first = fig4_invocations(
            scale=0.05, eps_values=(0.4,), datasets=("orkut",)
        ).data
        clear_caches()
        second = fig4_invocations(
            scale=0.05, eps_values=(0.4,), datasets=("orkut",)
        ).data
        assert first == second
