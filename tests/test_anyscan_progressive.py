"""anySCAN's anytime mode: monotone snapshots, exact final result."""

import numpy as np
import pytest

from repro.core import anyscan, anyscan_progressive
from repro.graph.generators import chung_lu, erdos_renyi, powerlaw_weights
from repro.types import CORE, ROLE_UNKNOWN, ScanParams


@pytest.fixture(scope="module")
def case():
    g = chung_lu(powerlaw_weights(200, 2.3), 1100, seed=29)
    return g, ScanParams(0.35, 3)


class TestProgressive:
    def test_final_snapshot_is_exact(self, case):
        g, params = case
        final = anyscan(g, params)
        *_, last = anyscan_progressive(g, params, alpha=64)
        assert np.array_equal(last.roles, final.roles)
        assert np.array_equal(last.core_labels, final.core_labels)

    def test_processed_roles_are_final(self, case):
        g, params = case
        final = anyscan(g, params)
        for snap in anyscan_progressive(g, params, alpha=50):
            prefix = snap.roles[: snap.processed]
            assert np.all(prefix != ROLE_UNKNOWN)
            assert np.array_equal(prefix, final.roles[: snap.processed])

    def test_roles_monotone_across_snapshots(self, case):
        g, params = case
        prev = None
        for snap in anyscan_progressive(g, params, alpha=40):
            if prev is not None:
                known = prev != ROLE_UNKNOWN
                assert np.all(snap.roles[known] == prev[known])
            prev = snap.roles

    def test_clusters_only_merge(self, case):
        """Provisional clusters refine by merging: once two cores share a
        cluster they never separate."""
        g, params = case
        prev_labels = None
        for snap in anyscan_progressive(g, params, alpha=40):
            labels = snap.core_labels
            if prev_labels is not None:
                cores = np.flatnonzero(
                    (prev_labels >= 0) & (labels >= 0)
                )
                seen: dict[int, int] = {}
                for v in cores.tolist():
                    old = int(prev_labels[v])
                    new = int(labels[v])
                    if old in seen:
                        assert seen[old] == new, "cluster split detected"
                    else:
                        seen[old] = new
            prev_labels = labels

    def test_snapshot_count_and_fractions(self, case):
        g, params = case
        snaps = list(anyscan_progressive(g, params, alpha=64))
        expected = -(-g.num_vertices // 64)
        assert len(snaps) == expected
        fractions = [s.fraction for s in snaps]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_alpha_validation(self, case):
        g, params = case
        with pytest.raises(ValueError):
            next(anyscan_progressive(g, params, alpha=0))

    def test_small_graph_single_block(self):
        g = erdos_renyi(10, 20, seed=1)
        params = ScanParams(0.5, 2)
        snaps = list(anyscan_progressive(g, params, alpha=100))
        assert len(snaps) == 1
        final = anyscan(g, params)
        assert np.array_equal(snaps[0].roles, final.roles)
