"""Fast vectorized exact clustering mode."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import brute_force_scan, fast_structural_clustering, ppscan
from repro.graph import complete_graph, empty_graph, from_edges, star_graph
from repro.graph.generators import (
    chung_lu,
    erdos_renyi,
    planted_partition,
    powerlaw_weights,
)
from repro.types import ScanParams


class TestExactness:
    @pytest.mark.parametrize("eps", [0.1, 0.3, 0.5, 0.7, 0.9, 1.0])
    @pytest.mark.parametrize("mu", [1, 2, 5])
    def test_vs_brute_force(self, eps, mu):
        g = erdos_renyi(60, 250, seed=31)
        params = ScanParams(eps, mu)
        assert fast_structural_clustering(g, params).same_clustering(
            brute_force_scan(g, params)
        )

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=0, max_value=140),
        st.integers(min_value=0, max_value=500),
    )
    def test_property_vs_ppscan(self, n, m, seed):
        g = erdos_renyi(n, min(m, n * (n - 1) // 2), seed=seed)
        params = ScanParams(0.45, 2)
        assert fast_structural_clustering(g, params).same_clustering(
            ppscan(g, params)
        )

    def test_powerlaw(self):
        g = chung_lu(powerlaw_weights(300, 2.2), 1800, seed=9)
        params = ScanParams(0.35, 4)
        assert fast_structural_clustering(g, params).same_clustering(
            ppscan(g, params)
        )

    def test_planted_partition(self):
        g, _ = planted_partition(4, 25, 0.5, 0.02, seed=10)
        params = ScanParams(0.4, 3)
        assert fast_structural_clustering(g, params).same_clustering(
            ppscan(g, params)
        )


class TestEdgeCases:
    def test_empty_graph(self):
        result = fast_structural_clustering(empty_graph(5), ScanParams(0.5, 1))
        assert result.num_clusters == 0

    def test_complete_graph(self):
        result = fast_structural_clustering(
            complete_graph(8), ScanParams(0.5, 2)
        )
        assert result.num_clusters == 1

    def test_star(self):
        result = fast_structural_clustering(star_graph(6), ScanParams(0.9, 2))
        assert result.num_clusters == 0

    def test_one_intersection_per_edge(self):
        g = erdos_renyi(50, 200, seed=1)
        record = fast_structural_clustering(g, ScanParams(0.5, 2)).record
        assert record.compsim_invocations <= g.num_edges

    def test_record_attached(self):
        g = from_edges([(0, 1), (1, 2), (0, 2)])
        record = fast_structural_clustering(g, ScanParams(0.5, 2)).record
        assert record.algorithm == "fast-exact"
        assert record.wall_seconds > 0
