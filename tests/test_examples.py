"""Every example script runs successfully from a fresh interpreter."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip()


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3
