"""Synthetic graph generators: determinism, shape control, validity."""

import numpy as np
import pytest

from repro.graph.generators import (
    REAL_WORLD_STANDINS,
    chung_lu,
    erdos_renyi,
    planted_partition,
    powerlaw_weights,
    real_world_standin,
    rmat,
    roll_graph,
)


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = erdos_renyi(100, 500, seed=1)
        assert g.num_edges == 500
        assert g.num_vertices == 100
        g.validate()

    def test_deterministic(self):
        a = erdos_renyi(60, 200, seed=5)
        b = erdos_renyi(60, 200, seed=5)
        assert np.array_equal(a.dst, b.dst)

    def test_seed_changes_graph(self):
        a = erdos_renyi(60, 200, seed=5)
        b = erdos_renyi(60, 200, seed=6)
        assert not np.array_equal(a.dst, b.dst)

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi(5, 11)

    def test_complete_possible(self):
        g = erdos_renyi(6, 15, seed=0)
        assert g.num_edges == 15


class TestPowerlaw:
    def test_weights_monotone_decreasing(self):
        w = powerlaw_weights(100, gamma=2.5)
        assert np.all(np.diff(w) <= 0)

    def test_weights_cap(self):
        w = powerlaw_weights(100, gamma=2.0, max_weight=10.0)
        assert w.max() <= 10.0

    def test_gamma_must_exceed_one(self):
        with pytest.raises(ValueError):
            powerlaw_weights(10, gamma=1.0)

    def test_heavier_tail_with_smaller_gamma(self):
        n, m = 800, 4000
        heavy = chung_lu(powerlaw_weights(n, 2.0), m, seed=2)
        light = chung_lu(powerlaw_weights(n, 3.5), m, seed=2)
        assert heavy.max_degree() > light.max_degree()

    def test_valid_and_deterministic(self):
        a = chung_lu(powerlaw_weights(200, 2.4), 1000, seed=9)
        b = chung_lu(powerlaw_weights(200, 2.4), 1000, seed=9)
        a.validate()
        assert np.array_equal(a.dst, b.dst)

    def test_edge_count_close_to_target(self):
        g = chung_lu(powerlaw_weights(500, 2.5), 3000, seed=4)
        assert g.num_edges == pytest.approx(3000, rel=0.05)


class TestRmat:
    def test_shape(self):
        g = rmat(scale=9, edge_factor=4, seed=1)
        assert g.num_vertices == 512
        g.validate()

    def test_skew(self):
        g = rmat(scale=11, edge_factor=6, a=0.7, b=0.15, c=0.1, seed=1)
        # R-MAT with skewed quadrants produces hub-heavy graphs.
        assert g.max_degree() > 8 * g.average_degree()

    def test_bad_quadrants_rejected(self):
        with pytest.raises(ValueError):
            rmat(scale=5, edge_factor=2, a=0.6, b=0.3, c=0.2)

    def test_deterministic(self):
        a = rmat(scale=8, edge_factor=3, seed=7)
        b = rmat(scale=8, edge_factor=3, seed=7)
        assert np.array_equal(a.dst, b.dst)


class TestRoll:
    def test_average_degree_close(self):
        g = roll_graph(4000, 40, seed=1)
        # Dedup trims a little; the target should be close.
        assert g.average_degree() == pytest.approx(40, rel=0.15)

    def test_scale_free_tail(self):
        g = roll_graph(3000, 20, seed=2)
        assert g.max_degree() > 5 * g.average_degree()

    def test_odd_degree_rejected(self):
        with pytest.raises(ValueError):
            roll_graph(100, 7)

    def test_n_too_small_rejected(self):
        with pytest.raises(ValueError):
            roll_graph(10, 40)

    def test_valid_and_deterministic(self):
        a = roll_graph(500, 8, seed=3)
        b = roll_graph(500, 8, seed=3)
        a.validate()
        assert np.array_equal(a.dst, b.dst)


class TestPlantedPartition:
    def test_labels_shape(self):
        g, labels = planted_partition(4, 25, 0.5, 0.01, seed=1)
        assert g.num_vertices == 100
        assert labels.shape == (100,)
        assert set(labels.tolist()) == {0, 1, 2, 3}

    def test_intra_denser_than_inter(self):
        g, labels = planted_partition(4, 30, 0.5, 0.02, seed=2)
        intra = inter = 0
        for u, v in g.edge_list():
            if labels[u] == labels[v]:
                intra += 1
            else:
                inter += 1
        assert intra > 3 * inter

    def test_p_out_zero(self):
        g, labels = planted_partition(3, 20, 0.6, 0.0, seed=3)
        for u, v in g.edge_list():
            assert labels[u] == labels[v]

    def test_invalid_probs(self):
        with pytest.raises(ValueError):
            planted_partition(2, 10, 0.1, 0.5)

    def test_valid(self):
        g, _ = planted_partition(3, 30, 0.4, 0.05, seed=4)
        g.validate()


class TestRealWorldStandins:
    def test_all_names_build(self):
        for name in REAL_WORLD_STANDINS:
            g = real_world_standin(name, scale=0.05)
            assert g.num_edges > 0
            g.validate()

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown stand-in"):
            real_world_standin("facebook")

    def test_degree_character_ordering(self):
        # Table 1: orkut densest, webbase sparsest of the four.
        graphs = {
            name: real_world_standin(name, scale=0.2)
            for name in ("orkut", "webbase", "twitter", "friendster")
        }
        avg = {k: g.average_degree() for k, g in graphs.items()}
        assert avg["orkut"] > avg["twitter"] > avg["webbase"]
        assert avg["friendster"] > avg["webbase"]

    def test_friendster_homogeneous_vs_twitter(self):
        tw = real_world_standin("twitter", scale=0.2)
        fr = real_world_standin("friendster", scale=0.2)
        # Relative hub size: twitter's heavy tail vs friendster's cap.
        assert (
            tw.max_degree() / tw.average_degree()
            > fr.max_degree() / fr.average_degree()
        )

    def test_scale_grows_graph(self):
        small = real_world_standin("orkut", scale=0.1)
        big = real_world_standin("orkut", scale=0.3)
        assert big.num_vertices > small.num_vertices
