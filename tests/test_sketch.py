"""The sketch subsystem: certified bounds, estimators, and conformance.

Three layers of guarantees are pinned here:

1. **Property tests** — for every arc of every fixture, the
   deterministic sketch bounds bracket the exact open overlap
   (``lb <= |N(u) ∩ N(v)| <= ub``), the bounds collapse to equality
   when both endpoint degrees fit inside the KMV sketch, and every
   probabilistic estimate stays inside the certified bracket.
2. **Soundness of conservative classification** — any SIM/NSIM decision
   the sketch gate emits with ``error == 0`` must agree with the exact
   similarity predicate; only UNKNOWN may fall back.
3. **Conformance** — ``Kernel.SKETCH`` in the conservative band is
   bit-identical to exact resolution for every algorithm × exec mode ×
   cache state, on the same fixture/grid style as ``test_conformance``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.cache import SimilarityStore
from repro.core import assert_same_clustering
from repro.graph import from_edges
from repro.graph.generators import erdos_renyi, lfr_graph
from repro.intersect import common_neighbor_counts
from repro.options import ExecMode, ExecutionOptions, Kernel
from repro.quality import adjusted_rand_index, primary_labels
from repro.similarity import min_cn_arcs
from repro.sketch import (
    SENTINEL,
    SketchParams,
    build_sketches,
    classify_arcs,
    estimate_overlaps,
    hash_vertices,
    overlap_bounds,
)
from repro.types import NSIM, SIM, UNKNOWN, ScanParams


def star(leaves: int):
    return from_edges([(0, i) for i in range(1, leaves + 1)])


def path(n: int):
    return from_edges([(i, i + 1) for i in range(n - 1)])


def clique(n: int):
    return from_edges([(i, j) for i in range(n) for j in range(i + 1, n)])


def triangles_plus_isolated():
    edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
    return from_edges(edges, num_vertices=8)  # 6, 7 isolated


FIXTURES = {
    "er-sparse": lambda: erdos_renyi(60, 240, seed=2),
    "er-dense": lambda: erdos_renyi(50, 450, seed=11),
    "lfr": lambda: lfr_graph(120, avg_degree=10.0, mu_mix=0.3, seed=5)[0],
    "star": lambda: star(12),
    "path": lambda: path(10),
    "clique": lambda: clique(7),
    "triangles+isolated": triangles_plus_isolated,
}

#: Parameter variety: a small k to force the probabilistic regime on
#: the denser fixtures, the default, and a degenerate 64-bit Bloom.
#: ``gate=0`` on the small-degree variants so the tiny fixtures are
#: actually classified rather than cost-gated straight to fallback.
SKETCH_VARIANTS = [
    SketchParams(gate=0),
    SketchParams(bits=64, k=4, seed=9, gate=0),
    SketchParams(bits=1024, k=64, seed=3),
]


def _arc_endpoints(graph):
    src = graph.arc_source()
    return src, graph.dst


class TestHashing:
    def test_no_sentinel_and_injective(self):
        for seed in (0, 1, 42):
            hv = hash_vertices(5000, seed)
            assert not np.any(hv == SENTINEL)
            assert np.unique(hv).size == hv.size

    def test_deterministic(self):
        np.testing.assert_array_equal(
            hash_vertices(100, 7), hash_vertices(100, 7)
        )
        assert not np.array_equal(hash_vertices(100, 7), hash_vertices(100, 8))


class TestCertifiedBounds:
    @pytest.mark.parametrize("name", sorted(FIXTURES))
    @pytest.mark.parametrize(
        "sp", SKETCH_VARIANTS, ids=lambda sp: sp.key()
    )
    def test_bounds_bracket_exact_overlap(self, name, sp):
        graph = FIXTURES[name]()
        if graph.num_arcs == 0:
            pytest.skip("no arcs")
        sk = build_sketches(graph, sp)
        src, dst = _arc_endpoints(graph)
        lb, ub = overlap_bounds(sk, src, dst)
        exact = common_neighbor_counts(
            graph, np.column_stack([src, dst])
        )
        assert np.all(lb <= exact), name
        assert np.all(exact <= ub), name

    @pytest.mark.parametrize("name", sorted(FIXTURES))
    def test_small_degrees_are_exact(self, name):
        graph = FIXTURES[name]()
        if graph.num_arcs == 0:
            pytest.skip("no arcs")
        sp = SketchParams(k=32)
        sk = build_sketches(graph, sp)
        src, dst = _arc_endpoints(graph)
        small = (graph.degrees[src] <= sp.k) & (graph.degrees[dst] <= sp.k)
        if not small.any():
            pytest.skip("no small-degree arcs")
        lb, ub = overlap_bounds(sk, src[small], dst[small])
        exact = common_neighbor_counts(
            graph, np.column_stack([src[small], dst[small]])
        )
        np.testing.assert_array_equal(lb, exact)
        np.testing.assert_array_equal(ub, exact)

    @pytest.mark.parametrize("name", ["er-dense", "lfr", "clique"])
    def test_estimates_stay_inside_bracket(self, name):
        graph = FIXTURES[name]()
        sp = SketchParams(bits=128, k=8, seed=5)  # force estimation
        sk = build_sketches(graph, sp)
        src, dst = _arc_endpoints(graph)
        arcs = np.arange(graph.num_arcs)
        est = estimate_overlaps(sk, graph, arcs, src=src)
        lb, ub = overlap_bounds(sk, src, dst)
        assert np.all(est >= lb + 2)
        assert np.all(est <= ub + 2)

    def test_build_is_deterministic(self):
        graph = FIXTURES["er-dense"]()
        sp = SketchParams()
        a, b = build_sketches(graph, sp), build_sketches(graph, sp)
        np.testing.assert_array_equal(a.bloom, b.bloom)
        np.testing.assert_array_equal(a.kmv, b.kmv)


class TestConservativeSoundness:
    @pytest.mark.parametrize("name", sorted(FIXTURES))
    def test_definite_decisions_match_exact_predicate(self, name):
        graph = FIXTURES[name]()
        if graph.num_arcs == 0:
            pytest.skip("no arcs")
        src, dst = _arc_endpoints(graph)
        exact_closed = (
            common_neighbor_counts(graph, np.column_stack([src, dst])) + 2
        )
        for params in (ScanParams(0.25, 2), ScanParams(0.5, 4)):
            mcn = min_cn_arcs(graph, params.eps_fraction)
            truth = np.where(exact_closed >= mcn, SIM, NSIM)
            for sp in SKETCH_VARIANTS:
                assert sp.conservative
                sk = build_sketches(graph, sp)
                states = classify_arcs(
                    sk, graph, np.arange(graph.num_arcs), mcn, src=src
                )
                decided = states != UNKNOWN
                np.testing.assert_array_equal(
                    states[decided], truth[decided]
                )

    def test_most_arcs_decided_on_sparse_graph(self):
        # The gate must actually prune: on an ER graph at default params
        # the vast majority of arcs is certified without exact fallback.
        graph = FIXTURES["er-sparse"]()
        sk = build_sketches(graph, SketchParams(gate=0))
        mcn = min_cn_arcs(graph, ScanParams(0.5, 2).eps_fraction)
        states = classify_arcs(
            sk, graph, np.arange(graph.num_arcs), mcn
        )
        assert np.mean(states != UNKNOWN) > 0.9


#: (algorithm, exec_mode); anyscan ignores exec_mode, gsindex is
#: index-based — both still honour the sketch pre-pass.
SKETCH_ALGOS = [
    ("pscan", ExecMode.SCALAR),
    ("pscan", ExecMode.BATCHED),
    ("scanxp", ExecMode.SCALAR),
    ("scanxp", ExecMode.BATCHED),
    ("ppscan", ExecMode.SCALAR),
    ("ppscan", ExecMode.BATCHED),
    ("anyscan", ExecMode.SCALAR),
    ("gsindex", ExecMode.SCALAR),
]

CONFORMANCE_GRID = [ScanParams(0.25, 2), ScanParams(0.5, 4)]


class TestConservativeConformance:
    @pytest.mark.parametrize("name", sorted(FIXTURES))
    def test_sketch_kernel_is_bit_identical(self, name):
        graph = FIXTURES[name]()
        warm = SimilarityStore()  # shared across the whole grid
        for params in CONFORMANCE_GRID:
            reference = api.cluster(graph, params, algorithm="scan")
            ref_labels = reference.classify(graph)
            for algorithm, mode in SKETCH_ALGOS:
                for cache in (None, warm):
                    result = api.cluster(
                        graph,
                        params,
                        algorithm=algorithm,
                        options=ExecutionOptions(
                            exec_mode=mode,
                            kernel=Kernel.SKETCH,
                            cache=cache,
                        ),
                    )
                    assert_same_clustering(reference, result)
                    np.testing.assert_array_equal(
                        ref_labels, result.classify(graph)
                    )

    def test_custom_bands_stay_exact_at_error_zero(self):
        graph = FIXTURES["lfr"]()
        params = ScanParams(0.5, 4)
        reference = api.cluster(graph, params)
        for sp in SKETCH_VARIANTS:
            result = api.cluster(
                graph,
                params,
                options=ExecutionOptions(kernel=Kernel.SKETCH, sketch=sp),
            )
            assert_same_clustering(reference, result)


class TestAggressiveBand:
    def test_quality_stays_high_under_loose_band(self):
        graph = FIXTURES["lfr"]()
        params = ScanParams(0.5, 4)
        exact = api.cluster(graph, params)
        approx = api.cluster(
            graph,
            params,
            options=ExecutionOptions(
                kernel=Kernel.SKETCH, sketch=SketchParams(error=0.2, gate=0)
            ),
        )
        ari = adjusted_rand_index(
            primary_labels(exact).tolist(),
            primary_labels(approx).tolist(),
            noise=-1,
        )
        assert ari >= 0.95

    def test_aggressive_is_deterministic(self):
        graph = FIXTURES["er-dense"]()
        params = ScanParams(0.5, 3)
        opts = ExecutionOptions(
            kernel=Kernel.SKETCH, sketch=SketchParams(error=0.1, gate=0)
        )
        a = api.cluster(graph, params, options=opts)
        b = api.cluster(graph, params, options=opts)
        assert_same_clustering(a, b)


class TestEngineIntegration:
    def test_store_memoizes_sketches(self):
        graph = FIXTURES["er-sparse"]()
        store = SimilarityStore()
        sp = SketchParams()
        opts = ExecutionOptions(
            kernel=Kernel.SKETCH, sketch=sp, cache=store
        )
        api.cluster(graph, ScanParams(0.5, 2), options=opts)
        memoized = store.sketches_for(graph, sp)
        assert memoized is not None
        np.testing.assert_array_equal(
            memoized.kmv, build_sketches(graph, sp).kmv
        )
        # A second run at new params reuses the memoized object as-is.
        api.cluster(graph, ScanParams(0.25, 2), options=opts)
        assert store.sketches_for(graph, sp) is memoized

    def test_sketch_decisions_never_enter_the_store(self):
        graph = FIXTURES["er-dense"]()
        store = SimilarityStore()
        api.cluster(
            graph,
            ScanParams(0.5, 3),
            options=ExecutionOptions(kernel=Kernel.SKETCH, cache=store),
        )
        entry = store.entry_for(graph)
        if entry is None or not entry.covered:
            return  # everything was sketch-decided: nothing recorded
        src, dst = _arc_endpoints(graph)
        covered = np.flatnonzero(entry.coverage)
        exact = (
            common_neighbor_counts(
                graph, np.column_stack([src[covered], dst[covered]])
            )
            + 2
        )
        np.testing.assert_array_equal(entry.overlap[covered], exact)

    def test_options_validation(self):
        with pytest.raises(TypeError):
            ExecutionOptions(sketch="b256")
        assert (
            ExecutionOptions(kernel=Kernel.SKETCH).effective_sketch()
            == SketchParams()
        )
        assert ExecutionOptions().effective_sketch() is None

    def test_params_validation(self):
        with pytest.raises(ValueError):
            SketchParams(bits=96)  # not a power of two
        with pytest.raises(ValueError):
            SketchParams(error=1.0)
        with pytest.raises(ValueError):
            SketchParams(k=0)
        with pytest.raises(ValueError):
            SketchParams(gate=-1)
        assert SketchParams(bits=512).effective_gate == 64  # 8 · words
