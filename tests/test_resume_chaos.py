"""Crash/resume differentials: SIGKILL-shaped interruptions at seeded
checkpoint epochs must resume to bit-identical clusterings.

In-process variant of ``benchmarks/check_crash_restart.py``: the crash
point's ``exit_fn`` raises ``SimulatedCrash`` (a ``BaseException``, so no
``except Exception`` handler can absorb it) instead of ``os._exit``,
letting one pytest process play both the killed run and the resumed run.
"""

import numpy as np
import pytest

from repro.cache import SimilarityStore
from repro.checkpoint import CheckpointManager, ResumeMismatchError
from repro.core import anyscan, assert_same_clustering, ppscan, pscan, scanxp
from repro.graph.generators import erdos_renyi
from repro.parallel import (
    Fault,
    FaultKind,
    FaultPlan,
    FaultTolerancePolicy,
    ProcessBackend,
    ProcessCrashPoint,
    ResumableAbort,
    RetryBudgetExhaustedError,
)
from repro.sweep import SweepEngine
from repro.types import ScanParams


class SimulatedCrash(BaseException):
    """Stands in for SIGKILL: not an Exception, unwinds everything."""


def crasher(record):
    def exit_fn(code):
        record.append(code)
        raise SimulatedCrash

    return exit_fn


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(120, 700, seed=9)


@pytest.fixture(scope="module")
def params():
    return ScanParams(eps=0.4, mu=3)


RUNNERS = {
    "ppscan": lambda g, p, ck: ppscan(g, p, checkpoint=ck),
    "ppscan-batched": lambda g, p, ck: ppscan(
        g, p, exec_mode="batched", checkpoint=ck
    ),
    "pscan": lambda g, p, ck: pscan(g, p, checkpoint=ck),
    "pscan-batched": lambda g, p, ck: pscan(
        g, p, exec_mode="batched", checkpoint=ck
    ),
    "scanxp": lambda g, p, ck: scanxp(g, p, checkpoint=ck),
    "scanxp-batched": lambda g, p, ck: scanxp(
        g, p, exec_mode="batched", checkpoint=ck
    ),
    "anyscan": lambda g, p, ck: anyscan(g, p, alpha=48, checkpoint=ck),
}


def run_crash_resume(tmp_path, graph, params, run, *, epoch, mode):
    """Crash at (epoch, mode), resume, return the resumed result."""
    fired = []
    ck = CheckpointManager(
        tmp_path / "ck",
        every=10,
        crash_point=ProcessCrashPoint(
            epoch=epoch, mode=mode, exit_fn=crasher(fired)
        ),
    )
    with pytest.raises(SimulatedCrash):
        run(graph, params, ck)
    assert fired, "crash point never fired"
    resumed = CheckpointManager(
        tmp_path / "ck", every=10, resume=True, crash_point=ProcessCrashPoint()
    )
    return run(graph, params, resumed)


class TestCrashResumeDifferential:
    """Each algorithm, killed mid-run, resumes to the identical answer."""

    @pytest.mark.parametrize("name", sorted(RUNNERS))
    @pytest.mark.parametrize("mode", ["before-save", "after-save"])
    def test_resume_is_bit_identical(
        self, tmp_path, graph, params, name, mode
    ):
        run = RUNNERS[name]
        reference = run(graph, params, None)
        out = run_crash_resume(
            tmp_path, graph, params, run, epoch=2, mode=mode
        )
        assert_same_clustering(reference, out)

    def test_resume_after_final_epoch_recomputes_cleanly(
        self, tmp_path, graph, params
    ):
        # Crash *after* the last save: resume restores the final barrier
        # snapshot and only re-derives the non-durable tail.
        run = RUNNERS["ppscan"]
        reference = run(graph, params, None)
        ck = CheckpointManager(tmp_path / "ck", every=10)
        run(graph, params, ck)
        final_epoch = ck.epoch
        out = run_crash_resume(
            tmp_path / "again",
            graph,
            params,
            run,
            epoch=final_epoch,
            mode="after-save",
        )
        assert_same_clustering(reference, out)

    def test_every_none_checkpoints_only_barriers(self, tmp_path, graph, params):
        ck = CheckpointManager(tmp_path / "ck")
        reference = ppscan(graph, params)
        out = ppscan(graph, params, checkpoint=ck)
        assert_same_clustering(reference, out)
        barrier_only = ck.epoch
        ck2 = CheckpointManager(tmp_path / "ck2", every=5)
        ppscan(graph, params, checkpoint=ck2)
        assert ck2.epoch > barrier_only


class TestResumeRefusals:
    def test_mismatched_graph_refused_via_algorithm(
        self, tmp_path, graph, params
    ):
        ck = CheckpointManager(tmp_path / "ck")
        ppscan(graph, params, checkpoint=ck)
        other = erdos_renyi(120, 700, seed=10)
        resumed = CheckpointManager(tmp_path / "ck", resume=True)
        with pytest.raises(ResumeMismatchError):
            ppscan(other, params, checkpoint=resumed)

    def test_mismatched_exec_mode_refused(self, tmp_path, graph, params):
        ck = CheckpointManager(tmp_path / "ck")
        ppscan(graph, params, checkpoint=ck)
        resumed = CheckpointManager(tmp_path / "ck", resume=True)
        with pytest.raises(ResumeMismatchError):
            ppscan(graph, params, exec_mode="batched", checkpoint=resumed)


class TestSupervisorFaultCheckpoint:
    """An exhausted supervisor writes a final checkpoint and re-raises as
    ResumableAbort; a later resume completes the run."""

    def test_fault_raises_resumable_abort(self, tmp_path, graph, params):
        ck = CheckpointManager(tmp_path / "ck", every=4)
        backend = ProcessBackend(2, chaos=FaultPlan.poison(0))
        with pytest.raises(ResumableAbort) as excinfo:
            ppscan(graph, params, backend=backend, checkpoint=ck)
        abort = excinfo.value
        assert abort.epoch >= 1
        assert abort.checkpoint_dir == ck.directory
        assert "--resume" in str(abort)
        assert abort.__cause__ is not None

        resumed = CheckpointManager(tmp_path / "ck", every=4, resume=True)
        out = ppscan(graph, params, checkpoint=resumed)
        assert_same_clustering(ppscan(graph, params), out)

    def test_fault_without_checkpoint_unchanged(self, graph, params):
        backend = ProcessBackend(2, chaos=FaultPlan.poison(0))
        with pytest.raises(Exception) as excinfo:
            ppscan(graph, params, backend=backend)
        assert not isinstance(excinfo.value, ResumableAbort)


class TestStoreCrashConsistency:
    def test_torn_spill_recomputes_identically(self, tmp_path, graph, params):
        reference = ppscan(graph, params)
        store = SimilarityStore(tmp_path / "cache")
        ppscan(graph, params, store=store)
        store.spill()
        # Tear the sidecar as an ill-timed crash would.
        sidecar = next((tmp_path / "cache").glob("*.json"))
        text = sidecar.read_text()
        sidecar.write_text(text[: len(text) // 2])
        cold = SimilarityStore(tmp_path / "cache")
        out = ppscan(graph, params, store=cold)
        assert cold.rejects == 1
        assert_same_clustering(reference, out)

    def test_crash_then_resume_with_store(self, tmp_path, graph, params):
        reference = ppscan(graph, params)
        store = SimilarityStore(tmp_path / "cache")
        out = run_crash_resume(
            tmp_path,
            graph,
            params,
            lambda g, p, ck: ppscan(g, p, store=store, checkpoint=ck),
            epoch=2,
            mode="after-save",
        )
        assert_same_clustering(reference, out)


class TestSweepResume:
    EPS = [0.3, 0.5]
    MU = [2, 4]

    def test_sweep_crash_resume_identical_points(self, tmp_path, graph):
        reference = SweepEngine(graph).run(self.EPS, self.MU)
        fired = []
        ck = CheckpointManager(
            tmp_path / "ck",
            crash_point=ProcessCrashPoint(
                epoch=2, mode="after-save", exit_fn=crasher(fired)
            ),
        )
        with pytest.raises(SimulatedCrash):
            SweepEngine(
                graph, cache_dir=tmp_path / "cache", checkpoint=ck
            ).run(self.EPS, self.MU)
        assert fired
        resumed = CheckpointManager(
            tmp_path / "ck", resume=True, crash_point=ProcessCrashPoint()
        )
        outcome = SweepEngine(
            graph, cache_dir=tmp_path / "cache", checkpoint=resumed
        ).run(self.EPS, self.MU)
        assert len(outcome.points) == len(reference.points)
        for ref_pt, out_pt in zip(reference.points, outcome.points):
            assert (ref_pt.eps, ref_pt.mu) == (out_pt.eps, out_pt.mu)
            assert (
                ref_pt.result.canonical() == out_pt.result.canonical()
            ), f"sweep point ({out_pt.eps}, {out_pt.mu}) diverged on resume"
        # Resume must never lose cache reuse relative to the clean run.
        assert (
            outcome.stats.reuse_fraction
            >= reference.stats.reuse_fraction - 1e-12
        )


class TestBackoffJitter:
    def test_jitter_disabled_by_default(self):
        policy = FaultTolerancePolicy(backoff_base=0.1, backoff_cap=1.0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)

    def test_jitter_is_deterministic_per_seed(self):
        a = FaultTolerancePolicy(backoff_jitter=0.5, jitter_seed=42)
        b = FaultTolerancePolicy(backoff_jitter=0.5, jitter_seed=42)
        delays_a = [a.backoff(k, task=t) for k in (1, 2, 3) for t in (0, 7)]
        delays_b = [b.backoff(k, task=t) for k in (1, 2, 3) for t in (0, 7)]
        assert delays_a == delays_b

    def test_different_seeds_decorrelate(self):
        a = FaultTolerancePolicy(backoff_jitter=0.5, jitter_seed=1)
        b = FaultTolerancePolicy(backoff_jitter=0.5, jitter_seed=2)
        assert [a.backoff(k) for k in range(1, 6)] != [
            b.backoff(k) for k in range(1, 6)
        ]

    def test_jitter_bounded(self):
        policy = FaultTolerancePolicy(
            backoff_base=0.1, backoff_cap=1.0, backoff_jitter=0.25
        )
        for attempt in range(1, 8):
            for task in range(5):
                delay = policy.backoff(attempt, task=task)
                base = min(0.1 * 2 ** (attempt - 1), 1.0)
                assert base <= delay <= base * 1.25

    def test_retry_wall_clock_cap(self):
        plan = FaultPlan(
            faults=(Fault(FaultKind.ERROR, task=3, attempt=None),)
        )
        policy = FaultTolerancePolicy(
            max_retries=50,
            backoff_base=0.05,
            backoff_cap=0.05,
            max_retry_wall=0.12,
        )
        backend = ProcessBackend(2, policy=policy, chaos=plan)
        tasks = [(i * 4, (i + 1) * 4) for i in range(8)]

        def run_task(beg, end):
            from repro.metrics import TaskCost

            return [(i, i) for i in range(beg, end)], TaskCost(arcs=end - beg)

        with pytest.raises(RetryBudgetExhaustedError) as excinfo:
            backend.run_phase(tasks, run_task, lambda writes: None)
        assert "wall-clock" in str(excinfo.value)
