"""External clustering-quality indices."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ppscan
from repro.graph.generators import planted_partition
from repro.quality import (
    adjusted_rand_index,
    contingency,
    normalized_mutual_information,
    primary_labels,
)
from repro.types import ScanParams

labels_strategy = st.lists(
    st.integers(min_value=0, max_value=5), min_size=1, max_size=60
)


class TestContingency:
    def test_counts(self):
        table = contingency([0, 0, 1], [1, 1, 0])
        assert table == {(0, 1): 2, (1, 0): 1}

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            contingency([0], [0, 1])


class TestARI:
    def test_identical_is_one(self):
        assert adjusted_rand_index([0, 0, 1, 1], [5, 5, 9, 9]) == 1.0

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, 400).tolist()
        b = rng.integers(0, 4, 400).tolist()
        assert abs(adjusted_rand_index(a, b)) < 0.1

    def test_empty(self):
        assert adjusted_rand_index([], []) == 1.0

    def test_single_cluster_both(self):
        assert adjusted_rand_index([0, 0, 0], [1, 1, 1]) == 1.0

    @given(labels_strategy)
    def test_self_ari_one(self, labels):
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    @given(labels_strategy, labels_strategy)
    def test_symmetric(self, a, b):
        n = min(len(a), len(b))
        assert adjusted_rand_index(a[:n], b[:n]) == pytest.approx(
            adjusted_rand_index(b[:n], a[:n])
        )


class TestNMI:
    def test_identical_is_one(self):
        assert normalized_mutual_information(
            [0, 0, 1, 1], [3, 3, 7, 7]
        ) == pytest.approx(1.0)

    def test_bounds(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 3, 200).tolist()
        b = rng.integers(0, 3, 200).tolist()
        nmi = normalized_mutual_information(a, b)
        assert -1e-9 <= nmi <= 1.0

    @given(labels_strategy)
    def test_self_nmi_one(self, labels):
        assert normalized_mutual_information(labels, labels) == pytest.approx(
            1.0
        )

    def test_constant_labels(self):
        assert normalized_mutual_information([0, 0], [0, 0]) == 1.0


class TestNoisePolicies:
    def test_exclude_matches_hand_masking(self):
        rng = np.random.default_rng(7)
        truth = rng.integers(0, 4, 300)
        labels = truth.copy()
        labels[rng.random(300) < 0.3] = -1  # unclustered
        mask = labels >= 0
        by_hand = adjusted_rand_index(
            truth[mask].tolist(), labels[mask].tolist()
        )
        by_kwarg = adjusted_rand_index(
            truth.tolist(),
            labels.tolist(),
            noise=-1,
            noise_policy="exclude",
        )
        assert by_kwarg == pytest.approx(by_hand)

    def test_singletons_penalize_noise(self):
        perfect = adjusted_rand_index([0, 0, 1, 1], [0, 0, 1, 1])
        noisy = adjusted_rand_index(
            [0, 0, 1, 1], [0, 0, 1, -1], noise=-1
        )
        assert perfect == 1.0 and noisy < 1.0

    def test_multiple_sentinels(self):
        # HUB/OUTLIER-style distinct sentinel ids are excluded together.
        assert (
            adjusted_rand_index(
                [0, 0, -2, 1],
                [0, 0, 1, -3],
                noise=(-2, -3),
                noise_policy="exclude",
            )
            == 1.0
        )

    def test_nmi_accepts_noise(self):
        nmi = normalized_mutual_information(
            [0, 0, 1, 1], [0, 0, 1, -1], noise=-1, noise_policy="exclude"
        )
        assert nmi == pytest.approx(1.0)

    def test_bad_policy_raises(self):
        with pytest.raises(ValueError):
            adjusted_rand_index([0], [0], noise=-1, noise_policy="drop")

    @given(labels_strategy)
    def test_singletons_self_ari_unaffected_without_noise(self, labels):
        # No sentinel present: both policies are the identity transform.
        base = adjusted_rand_index(labels, labels)
        assert adjusted_rand_index(
            labels, labels, noise=-1
        ) == pytest.approx(base)
        assert adjusted_rand_index(
            labels, labels, noise=-1, noise_policy="exclude"
        ) == pytest.approx(base)


class TestPrimaryLabels:
    def test_recovers_planted_partition(self):
        graph, truth = planted_partition(5, 30, 0.5, 0.005, seed=21)
        result = ppscan(graph, ScanParams(0.4, 4))
        labels = primary_labels(result)
        mask = labels >= 0
        assert mask.sum() > 0.5 * graph.num_vertices
        ari = adjusted_rand_index(
            truth[mask].tolist(), labels[mask].tolist()
        )
        assert ari > 0.9

    def test_noise_label(self):
        graph, _ = planted_partition(2, 15, 0.6, 0.0, seed=3)
        result = ppscan(graph, ScanParams(0.99, 14))
        labels = primary_labels(result, noise_label=-7)
        assert np.all(labels == -7)  # nothing clusters at eps ~ 1, mu 14
