"""The shared-overlap sweep engine: bit-identical grids, maximal reuse.

Locks in the tentpole guarantee — every grid point of a cached sweep is
bit-identical to an independent run — plus the reuse accounting, the
disk-warmed cross-process path, the ``use_cache=False`` degradation, and
the CLI/facade wiring.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.cache import SimilarityStore, graph_fingerprint
from repro.cli import main
from repro.core import assert_same_clustering
from repro.graph import write_edge_list
from repro.graph.generators import erdos_renyi
from repro.obs import Tracer, use_tracer
from repro.sweep import SweepEngine
from repro.types import ScanParams

EPS_GRID = [0.3, 0.5, 0.7]
MU_GRID = [2, 4]


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(70, 280, seed=13)


class TestGridOrder:
    def test_eps_descends_within_mu(self):
        order = SweepEngine.grid_order([0.3, 0.7, 0.5], [2, 4])
        assert order == [
            (0.7, 2), (0.5, 2), (0.3, 2),
            (0.7, 4), (0.5, 4), (0.3, 4),
        ]


class TestSweepEngine:
    @pytest.mark.parametrize("algorithm", ["ppscan", "pscan", "scanxp", "scan"])
    def test_identical_to_independent_runs(self, graph, algorithm):
        outcome = SweepEngine(graph, algorithm=algorithm).run(
            EPS_GRID, MU_GRID
        )
        assert len(outcome.points) == len(EPS_GRID) * len(MU_GRID)
        for mu in MU_GRID:
            for eps in EPS_GRID:
                independent = api.cluster(
                    graph, ScanParams(eps, mu), algorithm=algorithm
                )
                assert_same_clustering(
                    independent, outcome.point(eps, mu).result
                )

    def test_later_points_reuse(self, graph):
        outcome = SweepEngine(graph).run(EPS_GRID, MU_GRID)
        # The first executed point is necessarily all-miss; later points
        # may still miss the few arcs earlier runs pruned away without
        # resolving (coverage is partial, not total), but the bulk of
        # their lookups must come from the store.
        assert outcome.points[0].hits == 0
        for point in outcome.points[1:]:
            assert point.hits > 0
            assert point.reuse_fraction > 0.5
        assert outcome.stats.reuse_fraction > 0.5

    def test_second_sweep_on_shared_store_is_all_hits(self, graph):
        store = SimilarityStore()
        engine = SweepEngine(graph, store=store)
        first = engine.run(EPS_GRID, MU_GRID)
        warm = engine.run(EPS_GRID, MU_GRID)
        assert sum(p.misses for p in warm.points) == 0
        assert all(p.hits > 0 for p in warm.points)
        for p, q in zip(first.points, warm.points):
            assert_same_clustering(p.result, q.result)

    def test_disk_warm_across_engine_instances(self, graph, tmp_path):
        cold = SweepEngine(graph, cache_dir=tmp_path).run(EPS_GRID, MU_GRID)
        assert cold.spilled == 1
        stem = f"simstore-{graph_fingerprint(graph)[:20]}"
        assert (tmp_path / f"{stem}.npz").exists()
        assert (tmp_path / f"{stem}.json").exists()

        warm = SweepEngine(graph, cache_dir=tmp_path).run(EPS_GRID, MU_GRID)
        assert sum(p.misses for p in warm.points) == 0
        for p, q in zip(cold.points, warm.points):
            assert_same_clustering(p.result, q.result)

    def test_uncached_degrades_to_independent_runs(self, graph):
        outcome = SweepEngine(graph, use_cache=False).run(EPS_GRID, [2])
        assert not outcome.cached
        assert outcome.stats.lookups == 0
        for eps in EPS_GRID:
            assert_same_clustering(
                api.cluster(graph, ScanParams(eps, 2)),
                outcome.point(eps, 2).result,
            )

    def test_report_mentions_reuse(self, graph):
        outcome = SweepEngine(graph).run([0.4, 0.6], [2])
        text = outcome.report()
        assert "reuse" in text
        assert "store:" in text
        assert "%" in text

    def test_sweep_emits_point_spans(self, graph):
        tracer = Tracer()
        with use_tracer(tracer):
            SweepEngine(graph).run([0.4], [2])
        assert any(s.name == "sweep:point" for s in tracer.sorted_spans())


class TestApiFacade:
    def test_api_sweep_matches_engine(self, graph):
        outcome = api.sweep(graph, [0.4, 0.6], [3])
        assert outcome.cached
        for eps in (0.4, 0.6):
            assert_same_clustering(
                api.cluster(graph, ScanParams(eps, 3)),
                outcome.point(eps, 3).result,
            )

    def test_api_sweep_accepts_store(self, graph):
        store = SimilarityStore()
        api.sweep(graph, [0.5], [2], store=store)
        assert store.stats().misses > 0
        warm = api.sweep(graph, [0.5], [2], store=store)
        assert warm.points[0].misses == 0


class TestSweepCli:
    def _write_graph(self, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(erdos_renyi(50, 180, seed=5), path)
        return str(path)

    def test_cli_sweep_cache_dir_warm_second_run(self, tmp_path, capsys):
        gpath = self._write_graph(tmp_path)
        cache_dir = str(tmp_path / "cache")
        argv = [
            "sweep", gpath,
            "--eps", "0.4,0.6", "--mu", "2",
            "--cache-dir", cache_dir,
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "reuse" in cold and "spilled" in cold

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 misses" in warm

    def test_cli_sweep_no_cache(self, tmp_path, capsys):
        gpath = self._write_graph(tmp_path)
        assert main(["sweep", gpath, "--eps", "0.5", "--mu", "2",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "store:" not in out

    def test_cli_sweep_csv_has_reuse_column(self, tmp_path, capsys):
        gpath = self._write_graph(tmp_path)
        csv = tmp_path / "grid.csv"
        assert main(["sweep", gpath, "--eps", "0.5", "--mu", "2",
                     "--csv", str(csv)]) == 0
        lines = csv.read_text().strip().splitlines()
        assert lines[0].startswith("eps,mu,clusters")
        assert lines[0].endswith(",reuse")
        assert len(lines) == 2

    def test_cli_cluster_warm_cache_roundtrip(self, tmp_path, capsys):
        gpath = self._write_graph(tmp_path)
        cache_dir = str(tmp_path / "cache")
        save_a = str(tmp_path / "a.npz")
        save_b = str(tmp_path / "b.npz")
        assert main(["cluster", gpath, "--eps", "0.5", "--mu", "3",
                     "--cache-dir", cache_dir, "--save", save_a]) == 0
        first = capsys.readouterr().out
        assert "misses" in first and "spilled" in first
        assert main(["cluster", gpath, "--eps", "0.5", "--mu", "3",
                     "--cache-dir", cache_dir, "--save", save_b]) == 0
        second = capsys.readouterr().out
        assert "0 misses" in second

        from repro.core import ClusteringResult

        a = ClusteringResult.load(save_a)
        b = ClusteringResult.load(save_b)
        assert a.same_clustering(b)
