"""CSRGraph construction, access, invariants."""

import numpy as np
import pytest

from repro.graph import CSRGraph, complete_graph, from_edges, path_graph


def triangle() -> CSRGraph:
    return from_edges([(0, 1), (1, 2), (0, 2)])


class TestConstruction:
    def test_offsets_and_dst(self):
        g = triangle()
        assert g.offsets.tolist() == [0, 2, 4, 6]
        assert g.dst.tolist() == [1, 2, 0, 2, 0, 1]

    def test_num_vertices_edges_arcs(self):
        g = triangle()
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert g.num_arcs == 6
        assert len(g) == 3

    def test_arrays_immutable(self):
        g = triangle()
        with pytest.raises(ValueError):
            g.dst[0] = 5
        with pytest.raises(ValueError):
            g.offsets[0] = 1

    def test_rejects_bad_offsets_start(self):
        with pytest.raises(ValueError):
            CSRGraph(offsets=np.array([1, 2]), dst=np.array([0, 1]))

    def test_rejects_offsets_end_mismatch(self):
        with pytest.raises(ValueError):
            CSRGraph(offsets=np.array([0, 3]), dst=np.array([0, 1]))

    def test_rejects_decreasing_offsets(self):
        with pytest.raises(ValueError):
            CSRGraph(
                offsets=np.array([0, 2, 1, 2]), dst=np.array([1, 0])
            )

    def test_rejects_empty_offsets(self):
        with pytest.raises(ValueError):
            CSRGraph(offsets=np.array([], dtype=np.int64), dst=np.array([]))

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            CSRGraph(
                offsets=np.array([[0, 0]]), dst=np.array([], dtype=np.int64)
            )


class TestAccess:
    def test_degree(self):
        g = from_edges([(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1
        assert g.degrees.tolist() == [3, 1, 1, 1]

    def test_neighbors_sorted(self):
        g = from_edges([(2, 0), (2, 3), (2, 1)])
        assert g.neighbors(2).tolist() == [0, 1, 3]

    def test_neighbors_view_not_copy(self):
        g = triangle()
        nbrs = g.neighbors(1)
        assert nbrs.base is not None  # a view into dst

    def test_neighbor_range(self):
        g = triangle()
        lo, hi = g.neighbor_range(1)
        assert g.dst[lo:hi].tolist() == [0, 2]

    def test_has_edge(self):
        g = from_edges([(0, 1), (1, 2)])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_has_edge_isolated(self):
        g = from_edges([(0, 1)], num_vertices=3)
        assert not g.has_edge(2, 0)

    def test_edge_offset_definition(self):
        # Definition 2.11: dst[e(u, v)] == v.
        g = from_edges([(0, 1), (0, 3), (0, 5), (3, 5)])
        for u in range(g.num_vertices):
            for v in g.neighbors(u):
                assert g.dst[g.edge_offset(u, int(v))] == v

    def test_edge_offset_missing_raises(self):
        g = from_edges([(0, 1)])
        with pytest.raises(KeyError):
            g.edge_offset(0, 0)


class TestStatsAndConversions:
    def test_average_degree(self):
        assert complete_graph(5).average_degree() == 4.0
        assert path_graph(2).average_degree() == 1.0

    def test_max_degree(self):
        g = from_edges([(0, 1), (0, 2), (1, 2), (0, 3)])
        assert g.max_degree() == 3

    def test_edge_list_roundtrip(self):
        edges = [(0, 1), (1, 2), (0, 2), (2, 3)]
        g = from_edges(edges)
        assert sorted(map(tuple, g.edge_list().tolist())) == sorted(edges)

    def test_arc_source(self):
        g = triangle()
        assert g.arc_source().tolist() == [0, 0, 1, 1, 2, 2]

    def test_validate_accepts_good_graph(self):
        complete_graph(6).validate()

    def test_validate_rejects_asymmetric(self):
        bad = CSRGraph(offsets=np.array([0, 1, 1]), dst=np.array([1]))
        with pytest.raises(ValueError, match="symmetric"):
            bad.validate()

    def test_validate_rejects_self_loop(self):
        bad = CSRGraph(offsets=np.array([0, 1]), dst=np.array([0]))
        with pytest.raises(ValueError, match="self loop"):
            bad.validate()

    def test_validate_rejects_unsorted(self):
        bad = CSRGraph(
            offsets=np.array([0, 2, 3, 4]), dst=np.array([2, 1, 0, 0])
        )
        with pytest.raises(ValueError):
            bad.validate()

    def test_validate_rejects_out_of_range(self):
        bad = CSRGraph(offsets=np.array([0, 1, 2]), dst=np.array([1, 7]))
        with pytest.raises(ValueError, match="out of range"):
            bad.validate()
