"""Durable checkpoint subsystem: atomic writes, snapshots, clean misses."""

import json
import os

import numpy as np
import pytest

from repro.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointManager,
    ResumeMismatchError,
    atomic_write_bytes,
    atomic_write_text,
)
from repro.graph.generators import erdos_renyi
from repro.parallel import CRASH_EXIT_CODE, ProcessCrashPoint
from repro.types import ScanParams
from repro.unionfind import AtomicUnionFind, UnionFind


@pytest.fixture
def graph():
    return erdos_renyi(60, 240, seed=3)


@pytest.fixture
def params():
    return ScanParams(eps=0.5, mu=3)


def bound_manager(tmp_path, graph, params, **kwargs):
    mgr = CheckpointManager(tmp_path / "ck", **kwargs)
    mgr.bind(graph, params, algorithm="test", exec_mode="scalar")
    return mgr


class TestAtomicWrites:
    def test_bytes_roundtrip(self, tmp_path):
        target = tmp_path / "payload.bin"
        atomic_write_bytes(target, b"\x00\x01durable")
        assert target.read_bytes() == b"\x00\x01durable"

    def test_text_roundtrip(self, tmp_path):
        target = tmp_path / "note.json"
        atomic_write_text(target, '{"ok": true}\n')
        assert json.loads(target.read_text()) == {"ok": True}

    def test_overwrite_replaces_whole_file(self, tmp_path):
        target = tmp_path / "payload.bin"
        atomic_write_bytes(target, b"x" * 1000)
        atomic_write_bytes(target, b"y")
        assert target.read_bytes() == b"y"

    def test_no_temp_droppings(self, tmp_path):
        atomic_write_bytes(tmp_path / "a.bin", b"a")
        atomic_write_text(tmp_path / "b.txt", "b")
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "a.bin",
            "b.txt",
        ]


class TestSaveLoadRoundtrip:
    def test_roundtrip(self, tmp_path, graph, params):
        mgr = bound_manager(tmp_path, graph, params)
        arrays = {
            "roles": np.array([1, 0, 1], dtype=np.int8),
            "parent": np.arange(5, dtype=np.int64),
        }
        epoch = mgr.save(
            arrays=arrays, meta={"cursor": 2, "done": 17}, phase="similarity"
        )
        assert epoch == 1

        loader = bound_manager(tmp_path, graph, params, resume=True)
        ck = loader.load_latest()
        assert ck is not None
        assert ck.epoch == 1
        assert ck.phase == "similarity"
        assert ck.meta["cursor"] == 2
        assert ck.meta["done"] == 17
        np.testing.assert_array_equal(ck.arrays["roles"], arrays["roles"])
        np.testing.assert_array_equal(ck.arrays["parent"], arrays["parent"])

    def test_epochs_monotonic(self, tmp_path, graph, params):
        mgr = bound_manager(tmp_path, graph, params)
        for expect in (1, 2, 3):
            epoch = mgr.save(arrays={}, meta={}, phase=f"p{expect}")
            assert epoch == expect

    def test_latest_epoch_wins(self, tmp_path, graph, params):
        mgr = bound_manager(tmp_path, graph, params)
        mgr.save(arrays={}, meta={"tag": "old"}, phase="a")
        mgr.save(arrays={}, meta={"tag": "new"}, phase="b")
        ck = bound_manager(tmp_path, graph, params, resume=True).load_latest()
        assert ck.meta["tag"] == "new"

    def test_resume_continues_epoch_sequence(self, tmp_path, graph, params):
        bound_manager(tmp_path, graph, params).save(
            arrays={}, meta={}, phase="a"
        )
        mgr = bound_manager(tmp_path, graph, params, resume=True)
        mgr.load_latest()
        assert mgr.save(arrays={}, meta={}, phase="b") == 2

    def test_meta_key_reserved(self, tmp_path, graph, params):
        mgr = bound_manager(tmp_path, graph, params)
        with pytest.raises(ValueError, match="reserved"):
            mgr.save(arrays={"__meta__": np.zeros(1)}, meta={}, phase="x")

    def test_unbound_use_rejected(self, tmp_path):
        mgr = CheckpointManager(tmp_path / "ck")
        with pytest.raises(RuntimeError, match="bind"):
            mgr.save(arrays={}, meta={}, phase="x")

    def test_bad_every_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path / "ck", every=0)


class TestCleanMisses:
    """Corruption in any durable artifact must be a miss, never bad state."""

    def seed(self, tmp_path, graph, params):
        mgr = bound_manager(tmp_path, graph, params)
        mgr.save(
            arrays={"x": np.arange(4, dtype=np.int64)},
            meta={"cursor": 1},
            phase="p",
        )
        return mgr

    def latest(self, tmp_path, graph, params):
        return bound_manager(
            tmp_path, graph, params, resume=True
        ).load_latest()

    def test_fresh_directory_is_miss(self, tmp_path, graph, params):
        assert self.latest(tmp_path, graph, params) is None

    def test_truncated_payload(self, tmp_path, graph, params):
        mgr = self.seed(tmp_path, graph, params)
        (path,) = mgr.directory.glob("*.npz")
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert self.latest(tmp_path, graph, params) is None

    def test_bitflipped_payload(self, tmp_path, graph, params):
        mgr = self.seed(tmp_path, graph, params)
        (path,) = mgr.directory.glob("*.npz")
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert self.latest(tmp_path, graph, params) is None

    def test_missing_payload(self, tmp_path, graph, params):
        mgr = self.seed(tmp_path, graph, params)
        (path,) = mgr.directory.glob("*.npz")
        path.unlink()
        assert self.latest(tmp_path, graph, params) is None

    def test_corrupt_manifest(self, tmp_path, graph, params):
        mgr = self.seed(tmp_path, graph, params)
        mgr.manifest_path.write_text("{not json")
        assert self.latest(tmp_path, graph, params) is None

    def test_version_mismatch(self, tmp_path, graph, params):
        mgr = self.seed(tmp_path, graph, params)
        manifest = json.loads(mgr.manifest_path.read_text())
        manifest["version"] = CHECKPOINT_VERSION + 1
        mgr.manifest_path.write_text(json.dumps(manifest))
        assert self.latest(tmp_path, graph, params) is None

    def test_walkback_to_previous_good_epoch(self, tmp_path, graph, params):
        mgr = self.seed(tmp_path, graph, params)
        mgr.save(arrays={}, meta={"cursor": 2}, phase="q")
        newest = mgr.directory / sorted(
            p.name for p in mgr.directory.glob("*.npz")
        )[-1]
        newest.write_bytes(b"garbage")
        ck = self.latest(tmp_path, graph, params)
        assert ck is not None and ck.meta["cursor"] == 1

    def test_fresh_run_discards_stale_epochs(self, tmp_path, graph, params):
        self.seed(tmp_path, graph, params)
        # Re-binding without resume=True must not expose old snapshots.
        mgr = bound_manager(tmp_path, graph, params)
        assert mgr.epoch == 0
        assert mgr.save(arrays={}, meta={}, phase="fresh") == 1


class TestIdentityMismatch:
    def test_different_graph_refused(self, tmp_path, graph, params):
        bound_manager(tmp_path, graph, params).save(
            arrays={}, meta={}, phase="p"
        )
        other = erdos_renyi(60, 240, seed=4)
        mgr = CheckpointManager(tmp_path / "ck", resume=True)
        with pytest.raises(ResumeMismatchError, match="refusing to resume"):
            mgr.bind(other, params, algorithm="test", exec_mode="scalar")

    def test_different_params_refused(self, tmp_path, graph, params):
        bound_manager(tmp_path, graph, params).save(
            arrays={}, meta={}, phase="p"
        )
        mgr = CheckpointManager(tmp_path / "ck", resume=True)
        with pytest.raises(ResumeMismatchError):
            mgr.bind(
                graph,
                ScanParams(eps=0.7, mu=3),
                algorithm="test",
                exec_mode="scalar",
            )

    def test_different_algorithm_refused(self, tmp_path, graph, params):
        bound_manager(tmp_path, graph, params).save(
            arrays={}, meta={}, phase="p"
        )
        mgr = CheckpointManager(tmp_path / "ck", resume=True)
        with pytest.raises(ResumeMismatchError):
            mgr.bind(graph, params, algorithm="other", exec_mode="scalar")

    def test_without_resume_mismatch_is_silent_fresh(
        self, tmp_path, graph, params
    ):
        bound_manager(tmp_path, graph, params).save(
            arrays={}, meta={}, phase="p"
        )
        other = erdos_renyi(60, 240, seed=4)
        mgr = CheckpointManager(tmp_path / "ck")
        mgr.bind(other, params, algorithm="test", exec_mode="scalar")
        assert mgr.epoch == 0


class TestForSubrun:
    def test_sibling_directories_are_independent(self, tmp_path, graph, params):
        root = CheckpointManager(tmp_path / "ck", every=5)
        a = root.for_subrun("ppscan")
        b = root.for_subrun("pscan")
        assert a.directory != b.directory
        assert a.every == 5 and b.every == 5
        a.bind(graph, params, algorithm="ppscan")
        b.bind(graph, params, algorithm="pscan")
        a.save(arrays={}, meta={"who": "a"}, phase="p")
        b.save(arrays={}, meta={"who": "b"}, phase="p")
        ra = CheckpointManager(tmp_path / "ck" / "ppscan", resume=True)
        ra.bind(graph, params, algorithm="ppscan")
        assert ra.load_latest().meta["who"] == "a"


class TestUnionFindSnapshot:
    def test_sequential_roundtrip(self):
        uf = UnionFind(8)
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(1, 3)
        snap = {k: v.copy() for k, v in uf.snapshot().items()}
        fresh = UnionFind(8)
        fresh.restore(snap)
        assert fresh.find(0) == fresh.find(3)
        assert fresh.find(4) != fresh.find(0)

    def test_atomic_roundtrip(self):
        uf = AtomicUnionFind(8)
        uf.union(5, 6)
        uf.union(6, 7)
        snap = {k: v.copy() for k, v in uf.snapshot().items()}
        fresh = AtomicUnionFind(8)
        fresh.restore(snap)
        assert fresh.find(5) == fresh.find(7)
        assert fresh.find(4) != fresh.find(5)


class TestProcessCrashPoint:
    def test_inert_by_default(self):
        ProcessCrashPoint().fire("before-save", 1)  # no epoch set: no-op

    def test_fires_at_epoch_and_mode(self):
        fired = []
        point = ProcessCrashPoint(
            epoch=3, mode="after-save", exit_fn=fired.append
        )
        point.fire("after-save", 2)
        point.fire("before-save", 3)
        assert fired == []
        point.fire("after-save", 3)
        assert fired == [CRASH_EXIT_CODE]

    def test_from_env(self):
        point = ProcessCrashPoint.from_env(
            {"REPRO_CRASH_EPOCH": "7", "REPRO_CRASH_MODE": "before-save"}
        )
        assert point.epoch == 7 and point.mode == "before-save"

    def test_from_env_default_inert(self):
        assert ProcessCrashPoint.from_env({}).epoch is None

    def test_save_respects_crash_point(self, tmp_path):
        graph = erdos_renyi(20, 60, seed=1)
        fired = []

        class Boom(BaseException):
            pass

        def die(code):
            fired.append(code)
            raise Boom

        mgr = CheckpointManager(
            tmp_path / "ck",
            crash_point=ProcessCrashPoint(
                epoch=2, mode="before-save", exit_fn=die
            ),
        )
        mgr.bind(graph, ScanParams(0.5, 2), algorithm="t")
        mgr.save(arrays={}, meta={}, phase="a")
        with pytest.raises(Boom):
            mgr.save(arrays={}, meta={}, phase="b")
        # before-save: epoch 2 must NOT be on disk.
        loader = CheckpointManager(tmp_path / "ck", resume=True)
        loader.bind(graph, ScanParams(0.5, 2), algorithm="t")
        assert loader.load_latest().epoch == 1
