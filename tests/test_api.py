"""The repro.api facade, algorithm registry, and typed execution options."""

import warnings

import pytest

from repro import api
from repro.core import assert_same_clustering
from repro.graph.generators import erdos_renyi
from repro.options import BackendKind, ExecMode, ExecutionOptions, Kernel
from repro.parallel import FaultPlan, FaultTolerancePolicy, SerialBackend
from repro.types import ScanParams


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(200, 1200, seed=11)


@pytest.fixture(scope="module")
def params():
    return ScanParams(eps=0.3, mu=2)


class TestRegistry:
    def test_builtins_registered(self):
        names = set(api.available_algorithms())
        assert {
            "scan",
            "pscan",
            "scanpp",
            "anyscan",
            "scanxp",
            "ppscan",
            "gsindex",
        } <= names

    def test_round_trip(self, graph, params):
        spec = api.AlgorithmSpec(
            name="test-algo",
            display_name="Test",
            runner=lambda g, p, o: api.get_algorithm("scan").run(g, p, o),
            in_compare=False,
        )
        api.register_algorithm(spec)
        try:
            assert api.get_algorithm("test-algo") is spec
            result = api.cluster(graph, params, algorithm="test-algo")
            assert_same_clustering(
                result, api.cluster(graph, params, algorithm="scan")
            )
        finally:
            api._REGISTRY.pop("test-algo")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError):
            api.register_algorithm(api.get_algorithm("scan"))

    def test_unknown_algorithm(self, graph, params):
        with pytest.raises(KeyError, match="registered"):
            api.cluster(graph, params, algorithm="nope")

    def test_capability_flags(self):
        assert api.get_algorithm("ppscan").supports_backend
        assert not api.get_algorithm("scan").supports_backend
        assert not api.get_algorithm("gsindex").in_compare

    def test_ignored_options(self):
        opts = ExecutionOptions(
            backend=BackendKind.PROCESS, exec_mode=ExecMode.BATCHED
        )
        assert api.get_algorithm("scan").ignored_options(opts) == [
            "backend",
            "exec_mode",
        ]
        assert api.get_algorithm("ppscan").ignored_options(opts) == []


class TestClusterFacade:
    def test_all_algorithms_agree_via_facade(self, graph, params):
        outcome = api.compare(graph, params)
        assert "gsindex" not in outcome.results  # index excluded by default
        assert len(outcome.results) >= 6
        assert outcome.num_clusters >= 0

    def test_gsindex_through_facade(self, graph, params):
        result = api.cluster(graph, params, algorithm="gsindex")
        assert_same_clustering(result, api.cluster(graph, params))

    def test_process_backend_identical(self, graph, params):
        serial = api.cluster(graph, params)
        parallel = api.cluster(
            graph,
            params,
            options=ExecutionOptions(backend=BackendKind.PROCESS, workers=2),
        )
        assert_same_clustering(serial, parallel)

    def test_chaos_through_options(self, graph, params):
        opts = ExecutionOptions(
            backend=BackendKind.PROCESS,
            workers=4,
            chaos=FaultPlan.from_seed(42, tasks=16, kills=2),
        )
        assert_same_clustering(
            api.cluster(graph, params),
            api.cluster(graph, params, options=opts),
        )

    def test_compare_explicit_subset(self, graph, params):
        outcome = api.compare(
            graph, params, algorithms=["scan", "ppscan"]
        )
        assert set(outcome.results) == {"scan", "ppscan"}
        assert outcome.reference == "scan"


class TestExecutionOptions:
    def test_enums_compare_equal_to_strings(self):
        assert ExecMode.BATCHED == "batched"
        assert BackendKind.PROCESS == "process"
        assert Kernel.MERGE == "merge"

    def test_string_coercion_warns(self):
        with pytest.warns(DeprecationWarning, match="ExecMode.BATCHED"):
            opts = ExecutionOptions(exec_mode="batched")
        assert opts.exec_mode is ExecMode.BATCHED

    def test_unknown_string_rejected(self):
        with pytest.raises(ValueError, match="unknown exec_mode"):
            ExecutionOptions(exec_mode="quantum")

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionOptions(workers=0)
        with pytest.raises(ValueError):
            ExecutionOptions(max_retries=-1)
        with pytest.raises(ValueError):
            ExecutionOptions(task_timeout=0.0)

    def test_serial_builds_no_backend(self, graph):
        assert ExecutionOptions().make_backend(graph) is None

    def test_process_builds_supervised_backend(self, graph):
        opts = ExecutionOptions(
            backend=BackendKind.PROCESS, workers=2, max_retries=5
        )
        backend = opts.make_backend(graph)
        assert backend.supervised
        assert backend.workers == 2
        assert backend.policy.max_retries == 5
        assert backend.cost_model is not None

    def test_shorthands_overlay_policy(self):
        opts = ExecutionOptions(
            policy=FaultTolerancePolicy(poison_threshold=9),
            max_retries=7,
            task_timeout=1.5,
        )
        policy = opts.resolve_policy()
        assert policy.poison_threshold == 9
        assert policy.max_retries == 7
        assert policy.task_timeout == 1.5

    def test_evolve(self):
        opts = ExecutionOptions().evolve(workers=3)
        assert opts.workers == 3


class TestLegacyShims:
    def test_legacy_exec_mode_kwarg_warns_but_works(self, graph, params):
        with pytest.warns(DeprecationWarning, match="ExecutionOptions"):
            result = api.cluster(graph, params, exec_mode="batched")
        assert_same_clustering(result, api.cluster(graph, params))

    def test_legacy_backend_object_kwarg(self, graph, params):
        with pytest.warns(DeprecationWarning):
            result = api.cluster(graph, params, backend=SerialBackend())
        assert_same_clustering(result, api.cluster(graph, params))

    def test_legacy_workers_kwarg(self, graph, params):
        with pytest.warns(DeprecationWarning):
            result = api.cluster(
                graph, params, backend="process", workers=2
            )
        assert_same_clustering(result, api.cluster(graph, params))

    def test_unknown_kwarg_rejected(self, graph, params):
        with pytest.raises(TypeError, match="unexpected keyword"):
            api.cluster(graph, params, flux_capacitor=True)

    def test_no_warning_on_typed_path(self, graph, params):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            api.cluster(
                graph,
                params,
                options=ExecutionOptions(exec_mode=ExecMode.BATCHED),
            )

    def test_algorithms_still_accept_string_kwargs(self, graph, params):
        # the historical call signature, bypassing the facade entirely
        from repro.core import ppscan

        result = ppscan(graph, params, exec_mode="batched", kernel="merge")
        assert_same_clustering(result, api.cluster(graph, params))

    # Every legacy spelling, with the exact replacement string the
    # warning must carry so call sites can migrate by copy-paste.
    EVERY_SPELLING = [
        ({"backend": "serial"}, "backend=BackendKind.SERIAL"),
        ({"backend": "process"}, "backend=BackendKind.PROCESS"),
        ({"backend": BackendKind.PROCESS}, "backend=BackendKind.PROCESS"),
        ({"backend": None}, "backend=BackendKind.SERIAL"),
        ({"backend": SerialBackend()}, "backend_obj=<SerialBackend>"),
        ({"workers": 2}, "workers=2"),
        ({"workers": None}, "workers=None"),
        ({"exec_mode": "scalar"}, "exec_mode=ExecMode.SCALAR"),
        ({"exec_mode": "batched"}, "exec_mode=ExecMode.BATCHED"),
        ({"exec_mode": ExecMode.BATCHED}, "exec_mode=ExecMode.BATCHED"),
        ({"kernel": "merge"}, "kernel=Kernel.MERGE"),
        ({"kernel": "pivot"}, "kernel=Kernel.PIVOT"),
        ({"kernel": "vectorized"}, "kernel=Kernel.VECTORIZED"),
        ({"kernel": Kernel.MERGE}, "kernel=Kernel.MERGE"),
        ({"kernel": None}, "kernel=None"),
        ({"lanes": 4}, "lanes=4"),
        ({"task_threshold": 512}, "task_threshold=512"),
        (
            {"backend": "process", "workers": 2, "exec_mode": "batched"},
            "backend=BackendKind.PROCESS, workers=2, "
            "exec_mode=ExecMode.BATCHED",
        ),
    ]

    @pytest.mark.parametrize(
        "legacy,replacement",
        EVERY_SPELLING,
        ids=[
            "-".join(f"{k}={v}" for k, v in case.items())
            for case, _ in EVERY_SPELLING
        ],
    )
    def test_every_legacy_spelling_names_its_replacement(
        self, graph, params, legacy, replacement
    ):
        with pytest.warns(DeprecationWarning) as caught:
            result = api.cluster(graph, params, **legacy)
        messages = [str(w.message) for w in caught]
        shim = [m for m in messages if "deprecated" in m]
        assert len(shim) == 1, messages
        expected = f"options=ExecutionOptions({replacement})"
        assert expected in shim[0], (shim[0], expected)
        assert f"{sorted(legacy)}" in shim[0]
        assert "cluster()" in shim[0]
        assert_same_clustering(result, api.cluster(graph, params))

    @pytest.mark.parametrize("entry_point", ["cluster", "compare", "sweep"])
    def test_shim_names_the_calling_entry_point(
        self, graph, params, entry_point
    ):
        with pytest.warns(
            DeprecationWarning, match=rf"{entry_point}\(\)"
        ) as caught:
            if entry_point == "cluster":
                api.cluster(graph, params, exec_mode="batched")
            elif entry_point == "compare":
                api.compare(
                    graph, params, algorithms=["ppscan"],
                    exec_mode="batched",
                )
            else:
                api.sweep(graph, [0.4], [2], exec_mode="batched")
        assert any(
            "exec_mode=ExecMode.BATCHED" in str(w.message) for w in caught
        )

    def test_legacy_kwargs_layer_onto_explicit_options(self, graph, params):
        # options= plus a legacy kwarg: the kwarg wins for its field,
        # the typed options keep the rest.
        base = ExecutionOptions(exec_mode=ExecMode.BATCHED)
        with pytest.warns(DeprecationWarning):
            result = api.cluster(
                graph, params, options=base, kernel="merge"
            )
        assert_same_clustering(result, api.cluster(graph, params))
