"""Work records: aggregation and lookup."""

import pytest

from repro.metrics import RunRecord, StageRecord, TaskCost


class TestTaskCost:
    def test_add(self):
        a = TaskCost(scalar_cmp=1, arcs=2, compsims=3)
        a.add(TaskCost(scalar_cmp=10, vector_ops=5, allocs=7))
        assert a.scalar_cmp == 11
        assert a.vector_ops == 5
        assert a.arcs == 2
        assert a.allocs == 7
        assert a.compsims == 3

    def test_defaults_zero(self):
        t = TaskCost()
        assert (
            t.scalar_cmp
            == t.vector_ops
            == t.bound_updates
            == t.arcs
            == t.atomics
            == t.allocs
            == t.compsims
            == 0
        )


class TestStageRecord:
    def test_total(self):
        stage = StageRecord(
            "s", [TaskCost(arcs=1), TaskCost(arcs=2, atomics=3)]
        )
        total = stage.total()
        assert total.arcs == 3
        assert total.atomics == 3
        assert stage.num_tasks == 2

    def test_empty_total(self):
        assert StageRecord("s").total().arcs == 0


class TestRunRecord:
    def test_stage_lookup(self):
        record = RunRecord("x", [StageRecord("a"), StageRecord("b")])
        assert record.stage("b").name == "b"
        with pytest.raises(KeyError):
            record.stage("zzz")

    def test_total_and_invocations(self):
        record = RunRecord(
            "x",
            [
                StageRecord("a", [TaskCost(compsims=4)]),
                StageRecord("b", [TaskCost(compsims=6, scalar_cmp=9)]),
            ],
        )
        assert record.compsim_invocations == 10
        assert record.total().scalar_cmp == 9

    def test_duplicate_stage_names_first_wins(self):
        record = RunRecord(
            "x",
            [
                StageRecord("s", [TaskCost(arcs=1)]),
                StageRecord("s", [TaskCost(arcs=2)]),
            ],
        )
        assert record.stage("s").total().arcs == 1
        assert record.total().arcs == 3
