"""Greedy list-scheduling simulation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.parallel import assign_tasks, greedy_makespan

costs_strategy = st.lists(
    st.floats(min_value=0, max_value=100, allow_nan=False), max_size=50
)


class TestAssignTasks:
    def test_single_worker_serializes(self):
        loads, assignment = assign_tasks([3, 4, 5], 1)
        assert loads == [12]
        assert assignment == [0, 0, 0]

    def test_round_robin_when_equal(self):
        loads, assignment = assign_tasks([1, 1, 1, 1], 2)
        assert sorted(loads) == [2, 2]
        assert assignment[0] != assignment[1]

    def test_greedy_prefers_idle_worker(self):
        # First task is huge: everything else lands on the other worker.
        loads, assignment = assign_tasks([100, 1, 1, 1], 2)
        assert sorted(loads) == [3, 100]
        assert assignment[1:] == [assignment[1]] * 3

    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError):
            assign_tasks([1, -2], 2)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            greedy_makespan([1], 0)

    def test_empty_tasks(self):
        assert greedy_makespan([], 4) == 0.0


class TestMakespanBounds:
    @given(costs_strategy, st.integers(min_value=1, max_value=16))
    def test_classic_list_scheduling_bounds(self, costs, workers):
        """total/W <= makespan <= total/W + max (Graham's bound)."""
        makespan = greedy_makespan(costs, workers)
        total = sum(costs)
        biggest = max(costs, default=0.0)
        assert makespan >= total / workers - 1e-9
        assert makespan >= biggest - 1e-9
        assert makespan <= total / workers + biggest + 1e-9

    @given(costs_strategy)
    def test_one_worker_equals_total(self, costs):
        assert greedy_makespan(costs, 1) == pytest.approx(sum(costs))

    @given(costs_strategy, st.integers(min_value=1, max_value=8))
    def test_more_workers_never_slower(self, costs, workers):
        assert (
            greedy_makespan(costs, workers + 1)
            <= greedy_makespan(costs, workers) + 1e-9
        )

    def test_loads_sum_to_total(self):
        costs = [3.0, 1.0, 4.0, 1.0, 5.0]
        loads, _ = assign_tasks(costs, 3)
        # loads are completion times; per-worker work sums to total.
        _, assignment = assign_tasks(costs, 3)
        per_worker = [0.0] * 3
        for c, w in zip(costs, assignment):
            per_worker[w] += c
        assert sum(per_worker) == pytest.approx(sum(costs))
