"""Distributed BSP SCAN: partitioners, exactness, communication model."""

import numpy as np
import pytest

from repro.core import assert_same_clustering, ppscan
from repro.distributed import (
    COMMODITY_CLUSTER,
    CommRecord,
    Superstep,
    block_partition,
    cut_arcs,
    degree_balanced_partition,
    distributed_scan,
    hash_partition,
)
from repro.graph.generators import chung_lu, erdos_renyi, powerlaw_weights
from repro.types import ScanParams


@pytest.fixture(scope="module")
def graph():
    return chung_lu(powerlaw_weights(200, 2.3), 1100, seed=37)


class TestPartitioners:
    def test_block_contiguous(self, graph):
        owner = block_partition(graph, 4)
        assert owner.min() == 0 and owner.max() <= 3
        assert np.all(np.diff(owner) >= 0)  # contiguous ranges

    def test_hash_uses_all_workers(self, graph):
        owner = hash_partition(graph, 4, seed=1)
        assert set(owner.tolist()) == {0, 1, 2, 3}

    def test_degree_balanced_loads(self, graph):
        owner = degree_balanced_partition(graph, 4)
        loads = [
            int(graph.degrees[owner == w].sum()) for w in range(4)
        ]
        assert max(loads) < 1.25 * (sum(loads) / 4)

    def test_single_worker_no_cut(self, graph):
        owner = block_partition(graph, 1)
        assert cut_arcs(graph, owner) == 0

    def test_more_workers_more_cut(self, graph):
        c2 = cut_arcs(graph, hash_partition(graph, 2, seed=0))
        c8 = cut_arcs(graph, hash_partition(graph, 8, seed=0))
        assert c8 > c2

    def test_invalid_workers(self, graph):
        with pytest.raises(ValueError):
            block_partition(graph, 0)


class TestExactness:
    @pytest.mark.parametrize("partitioner", ["block", "hash", "degree"])
    @pytest.mark.parametrize("workers", [1, 3, 8])
    def test_matches_ppscan(self, graph, partitioner, workers):
        params = ScanParams(0.4, 3)
        reference = ppscan(graph, params)
        result, _ = distributed_scan(
            graph, params, workers=workers, partitioner=partitioner
        )
        assert_same_clustering(reference, result)

    @pytest.mark.parametrize("eps", [0.2, 0.6, 0.9])
    def test_eps_sweep(self, graph, eps):
        params = ScanParams(eps, 4)
        result, _ = distributed_scan(graph, params, workers=4)
        assert_same_clustering(ppscan(graph, params), result)

    def test_unknown_partitioner(self, graph):
        with pytest.raises(ValueError, match="partitioner"):
            distributed_scan(graph, ScanParams(0.5, 2), partitioner="magic")


class TestCommunication:
    def test_single_worker_is_free(self, graph):
        _, record = distributed_scan(graph, ScanParams(0.4, 3), workers=1)
        assert record.total_bytes == 0
        assert record.total_messages == 0

    def test_more_workers_more_bytes(self, graph):
        params = ScanParams(0.4, 3)
        _, r2 = distributed_scan(graph, params, workers=2)
        _, r8 = distributed_scan(graph, params, workers=8)
        assert r8.total_bytes > r2.total_bytes

    def test_phases_present(self, graph):
        _, record = distributed_scan(graph, ScanParams(0.4, 3), workers=4)
        phases = record.bytes_by_phase()
        for name in (
            "degree broadcast",
            "adjacency exchange",
            "similarity + mirror",
            "role computation",
            "label propagation",
            "membership assembly",
        ):
            assert name in phases

    def test_adjacency_exchange_dominates(self, graph):
        """Shipping neighbor lists is the big-ticket item — the
        structural reason the paper dismisses the distributed setting."""
        _, record = distributed_scan(graph, ScanParams(0.2, 3), workers=8)
        phases = record.bytes_by_phase()
        assert phases["adjacency exchange"] >= phases["similarity + mirror"]

    def test_label_propagation_terminates(self, graph):
        _, record = distributed_scan(graph, ScanParams(0.3, 2), workers=8)
        rounds = sum(
            1 for s in record.supersteps if s.name == "label propagation"
        )
        assert 1 <= rounds <= graph.num_vertices


class TestClusterPricing:
    def test_round_latency_floors_the_job(self):
        record = CommRecord(workers=2)
        record.supersteps = [
            Superstep("a", [0.0, 0.0]),
            Superstep("b", [0.0, 0.0]),
        ]
        priced = COMMODITY_CLUSTER.run_seconds(record)
        assert priced >= 2 * COMMODITY_CLUSTER.round_latency

    def test_transfer_term(self):
        record = CommRecord(workers=2)
        record.supersteps = [Superstep("a", [0.0], bytes_sent=125_000_000)]
        priced = COMMODITY_CLUSTER.run_seconds(record)
        assert priced >= 1.0  # 1 GbE: 125 MB takes a second

    def test_distributed_loses_to_shared_memory(self, graph):
        """The paper's verdict: communication overheads make the BSP
        setting uncompetitive with shared-memory ppSCAN."""
        from repro.parallel import CPU_SERVER

        params = ScanParams(0.4, 3)
        _, record = distributed_scan(graph, params, workers=8)
        bsp = COMMODITY_CLUSTER.run_seconds(record)
        shared = CPU_SERVER.run_seconds(ppscan(graph, params).record, 8)
        assert bsp > 3 * shared
