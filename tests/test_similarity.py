"""Threshold arithmetic, the similarity engine, and predicate pruning."""

import math
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import complete_graph, from_edges, star_graph
from repro.graph.generators import chung_lu, erdos_renyi, powerlaw_weights
from repro.similarity import (
    SimilarityEngine,
    ThresholdTable,
    min_cn_arcs,
    min_cn_threshold,
    predicate_prune_arcs,
)
from repro.types import NSIM, SIM, UNKNOWN, ScanParams


class TestMinCnThreshold:
    def test_matches_ceiling_formula(self):
        # Definition 2.2: threshold = ceil(eps * sqrt((du+1)(dv+1))).
        eps = Fraction(1, 2)
        for du in range(0, 30):
            for dv in range(0, 30):
                exact = min_cn_threshold(eps, du, dv)
                float_ceil = math.ceil(0.5 * math.sqrt((du + 1) * (dv + 1)))
                assert abs(exact - float_ceil) <= 1  # float may straddle ties
                # Exact definition: smallest k with k^2 >= eps^2 * D.
                target = Fraction(1, 4) * (du + 1) * (dv + 1)
                assert exact * exact >= target
                assert exact == 0 or (exact - 1) ** 2 < target

    def test_eps_one(self):
        # eps = 1: threshold is ceil(sqrt((du+1)(dv+1))).
        assert min_cn_threshold(Fraction(1), 3, 3) == 4
        assert min_cn_threshold(Fraction(1), 2, 4) == 4  # sqrt(15) -> 4

    def test_exact_boundary_is_similar(self):
        # eps=1/2, du=dv=7: threshold = ceil(0.5*8) = 4 exactly; count==4
        # must be similar (the >= of Definition 2.2).
        assert min_cn_threshold(Fraction(1, 2), 7, 7) == 4

    @given(
        st.fractions(min_value=Fraction(1, 100), max_value=1),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_least_k_property(self, eps, du, dv):
        k = min_cn_threshold(eps, du, dv)
        target = eps * eps * (du + 1) * (dv + 1)
        assert k * k >= target
        assert k == 0 or (k - 1) * (k - 1) < target

    def test_threshold_table_caches_and_symmetric(self):
        table = ThresholdTable(Fraction(3, 10))
        assert table(5, 9) == table(9, 5)
        assert table(5, 9) == min_cn_threshold(Fraction(3, 10), 5, 9)


class TestVectorizedThresholds:
    @pytest.mark.parametrize("eps", [0.1, 0.2, 0.35, 0.5, 0.77, 0.9, 1.0])
    def test_matches_scalar_for_all_arcs(self, eps):
        g = chung_lu(powerlaw_weights(150, 2.2), 900, seed=1)
        frac = ScanParams(eps, 2).eps_fraction
        vec = min_cn_arcs(g, frac)
        src = g.arc_source()
        for i in range(g.num_arcs):
            assert vec[i] == min_cn_threshold(
                frac, g.degree(int(src[i])), g.degree(int(g.dst[i]))
            )

    def test_prune_states(self):
        g = star_graph(30)  # hub deg 30, leaves deg 1
        frac = ScanParams(0.8, 2).eps_fraction
        mcn = min_cn_arcs(g, frac)
        states = predicate_prune_arcs(g, mcn)
        # hub-leaf: c = ceil(.8*sqrt(31*2)) = ceil(6.3) = 7 > 1+2 -> NSIM
        assert np.all(states == NSIM)

    def test_prune_sim_state(self):
        g = from_edges([(0, 1)])  # two deg-1 endpoints
        frac = ScanParams(0.5, 1).eps_fraction
        states = predicate_prune_arcs(g, min_cn_arcs(g, frac))
        # c = ceil(0.5 * 2) = 1 <= 2 -> SIM without intersection
        assert np.all(states == SIM)

    def test_prune_unknown_in_between(self):
        g = complete_graph(6)
        frac = ScanParams(0.9, 2).eps_fraction
        states = predicate_prune_arcs(g, min_cn_arcs(g, frac))
        # c = ceil(.9*6) = 6, du+2 = 7 >= 6 and 2 < 6 -> undecided
        assert np.all(states == UNKNOWN)


class TestSimilarityEngine:
    @pytest.fixture
    def graph(self):
        return erdos_renyi(60, 260, seed=7)

    @pytest.mark.parametrize("kernel", ["merge", "pivot", "vectorized"])
    def test_kernels_agree_with_exhaustive(self, graph, kernel):
        params = ScanParams(0.5, 2)
        engine = SimilarityEngine(graph, params, kernel=kernel)
        oracle = SimilarityEngine(graph, params, kernel="merge")
        for u, v in graph.edge_list()[:150]:
            assert engine.compsim(int(u), int(v)) == oracle.compsim_exhaustive(
                int(u), int(v)
            )

    def test_predicate_prune_sound(self, graph):
        """Pruned decisions must equal the computed decisions."""
        params = ScanParams(0.6, 2)
        engine = SimilarityEngine(graph, params)
        for u, v in graph.edge_list():
            pruned = engine.predicate_prune(int(u), int(v))
            if pruned != UNKNOWN:
                computed = SIM if engine.compsim_exhaustive(int(u), int(v)) else NSIM
                assert pruned == computed

    def test_similarity_value_matches_definition(self):
        g = from_edges([(0, 1), (1, 2), (0, 2)])
        engine = SimilarityEngine(g, ScanParams(0.5, 1))
        # triangle: |closed(u) ^ closed(v)| = 3, degrees 2 each.
        assert engine.similarity_value(0, 1) == pytest.approx(3 / 3)

    def test_unknown_kernel_rejected(self, graph):
        with pytest.raises(ValueError, match="unknown kernel"):
            SimilarityEngine(graph, ScanParams(0.5, 2), kernel="avx1024")

    def test_counter_accumulates(self, graph):
        engine = SimilarityEngine(graph, ScanParams(0.5, 2))
        u, v = map(int, graph.edge_list()[0])
        engine.compsim(u, v)
        assert engine.counter.invocations == 1


class TestScanParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScanParams(0.0, 1)
        with pytest.raises(ValueError):
            ScanParams(1.1, 1)
        with pytest.raises(ValueError):
            ScanParams(0.5, 0)

    def test_eps_fraction_snaps_decimal(self):
        assert ScanParams(0.2, 1).eps_fraction == Fraction(1, 5)
        assert ScanParams(0.35, 1).eps_fraction == Fraction(7, 20)

    def test_mu_coerced_to_int(self):
        assert ScanParams(0.5, 3.0).mu == 3
