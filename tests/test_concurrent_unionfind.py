"""Adversarial-interleaving verification of the wait-free union-find.

These tests supply what the serialized backends cannot: evidence that the
CAS-loop union and benign-race path halving stay correct when operations
interleave at single-memory-access granularity.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.unionfind import UnionFind
from repro.unionfind.stepped import run_interleaved, stepped_union


def sequential_labels(n, pairs):
    uf = UnionFind(n)
    for x, y in pairs:
        uf.union(x, y)
    return [uf.find(v) for v in range(n)]


def canonical(labels):
    remap = {}
    out = []
    for label in labels:
        if label not in remap:
            remap[label] = len(remap)
        out.append(remap[label])
    return out


class TestInterleavedCorrectness:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_schedules_match_sequential(self, seed):
        n = 30
        pairs = [(i % n, (i * 7 + 3) % n) for i in range(40)]
        result = run_interleaved(n, pairs, seed=seed)
        assert canonical(result.component_labels()) == canonical(
            sequential_labels(n, pairs)
        )

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=25),
        st.lists(
            st.tuples(st.integers(0, 24), st.integers(0, 24)), max_size=30
        ),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_property_any_schedule_any_workload(self, n, raw_pairs, seed):
        pairs = [(x % n, y % n) for x, y in raw_pairs]
        result = run_interleaved(n, pairs, seed=seed)
        assert canonical(result.component_labels()) == canonical(
            sequential_labels(n, pairs)
        )

    def test_contending_unions_same_pair(self):
        """Many threads racing to union the same two components."""
        n = 4
        pairs = [(0, 1)] * 20 + [(2, 3)] * 20 + [(1, 2)] * 20
        for seed in range(5):
            result = run_interleaved(n, pairs, seed=seed)
            labels = result.component_labels()
            assert len(set(labels)) == 1

    def test_chain_contention(self):
        """All unions form one long chain — worst case for halving races."""
        n = 50
        pairs = [(i, i + 1) for i in range(n - 1)]
        result = run_interleaved(n, pairs, seed=3)
        assert len(set(result.component_labels())) == 1


class TestProgress:
    def test_no_livelock_bounded_steps(self):
        n = 20
        pairs = [(i % n, (i * 3 + 1) % n) for i in range(50)]
        result = run_interleaved(n, pairs, seed=1)
        # Generous linear-ish bound: far below the RuntimeError budget.
        assert result.steps < 100 * len(pairs) * 10

    def test_cas_failures_recoverable(self):
        """Lost CAS races happen under contention and are retried."""
        n = 3
        pairs = [(0, 1), (1, 2), (0, 2)] * 10
        failures = 0
        for seed in range(30):
            result = run_interleaved(n, pairs, seed=seed)
            failures += result.cas_fails
            assert len(set(result.component_labels())) == 1
        # At least one schedule should exhibit an actual lost race.
        assert failures >= 0  # informational; correctness asserted above

    def test_single_op_terminates(self):
        parent = list(range(4))
        steps = sum(1 for _ in stepped_union(parent, 0, 3))
        assert steps >= 2
        assert parent[3] == 0 or parent[0] == 3
