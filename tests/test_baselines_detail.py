"""Baseline-specific behaviour: pSCAN ordering, SCAN-XP exhaustiveness,
anySCAN blocks and memory model."""

import numpy as np
import pytest

from repro.core import anyscan, pscan, scanxp
from repro.core.anyscan import (
    BYTES_PER_EDGE,
    BYTES_PER_VERTEX,
    estimated_memory_bytes,
)
from repro.graph.generators import chung_lu, erdos_renyi, powerlaw_weights
from repro.types import ScanParams


@pytest.fixture(scope="module")
def graph():
    return chung_lu(powerlaw_weights(250, 2.4), 1500, seed=10)


class TestPscan:
    def test_ed_order_vs_static_same_result(self, graph):
        params = ScanParams(0.4, 4)
        a = pscan(graph, params)
        b = pscan(graph, params, use_ed_order=False)
        assert a.same_clustering(b)

    def test_ed_order_effect_on_invocations_small(self, graph):
        """The paper's §4.1 claim: dropping the ed priority queue has a
        negligible effect on workload reduction."""
        params = ScanParams(0.3, 5)
        ordered = pscan(graph, params).record.compsim_invocations
        static = pscan(
            graph, params, use_ed_order=False
        ).record.compsim_invocations
        assert static <= ordered * 1.5 + 10
        assert ordered <= static * 1.5 + 10

    def test_breakdown_stages_present(self, graph):
        record = pscan(graph, ScanParams(0.4, 4)).record
        names = [s.name for s in record.stages]
        assert "similarity evaluation" in names
        assert "workload reduction computation" in names
        assert "other computation" in names

    def test_fewer_invocations_than_edges(self, graph):
        record = pscan(graph, ScanParams(0.2, 5)).record
        assert 0 < record.compsim_invocations <= graph.num_edges


class TestScanXP:
    def test_exhaustive_two_per_edge(self, graph):
        """SCAN-XP computes each arc independently: 2|E| invocations."""
        record = scanxp(graph, ScanParams(0.4, 4)).record
        assert record.compsim_invocations == graph.num_arcs

    def test_workload_independent_of_eps(self, graph):
        r1 = scanxp(graph, ScanParams(0.2, 4)).record.total()
        r2 = scanxp(graph, ScanParams(0.8, 4)).record.total()
        assert r1.scalar_cmp == r2.scalar_cmp
        assert r1.vector_ops == r2.vector_ops

    def test_uses_vector_ops(self, graph):
        assert scanxp(graph, ScanParams(0.4, 4)).record.total().vector_ops > 0


class TestAnyScan:
    def test_alpha_invariance(self, graph):
        params = ScanParams(0.4, 4)
        base = anyscan(graph, params, alpha=64)
        for alpha in (1, 17, 512, 10**6):
            assert base.same_clustering(anyscan(graph, params, alpha=alpha))

    def test_alpha_validation(self, graph):
        with pytest.raises(ValueError):
            anyscan(graph, ScanParams(0.4, 4), alpha=0)

    def test_block_count_follows_alpha(self, graph):
        params = ScanParams(0.4, 4)
        rec64 = anyscan(graph, params, alpha=64).record
        rec256 = anyscan(graph, params, alpha=256).record
        blocks64 = sum(1 for s in rec64.stages if s.name == "summarization")
        blocks256 = sum(1 for s in rec256.stages if s.name == "summarization")
        assert blocks64 > blocks256

    def test_allocs_recorded(self, graph):
        record = anyscan(graph, ScanParams(0.4, 4)).record
        assert record.total().allocs > 0

    def test_memory_model_paper_pattern(self):
        """Calibration check: twitter fits in 64 GB, webbase and
        friendster do not (the paper's RE pattern)."""
        from repro.bench.datasets import PAPER_GRAPH_SIZES

        limit = 64 * 10**9
        fits = {
            name: estimated_memory_bytes(v, e) <= limit
            for name, (v, e) in PAPER_GRAPH_SIZES.items()
        }
        assert fits == {
            "orkut": True,
            "twitter": True,
            "webbase": False,
            "friendster": False,
        }

    def test_memory_limit_enforced(self, graph):
        tiny_limit = (
            BYTES_PER_VERTEX * graph.num_vertices
            + BYTES_PER_EDGE * graph.num_edges
        ) - 1
        with pytest.raises(MemoryError):
            anyscan(graph, ScanParams(0.4, 4), memory_limit_bytes=tiny_limit)

    def test_memory_limit_pass(self, graph):
        result = anyscan(
            graph, ScanParams(0.4, 4), memory_limit_bytes=10**12
        )
        assert result.num_vertices == graph.num_vertices

    def test_more_work_than_ppscan(self, graph):
        """anySCAN lacks min-max pruning: it must run more CompSims."""
        from repro.core import ppscan

        params = ScanParams(0.4, 4)
        any_rec = anyscan(graph, params).record
        pp_rec = ppscan(graph, params).record
        assert any_rec.compsim_invocations >= pp_rec.compsim_invocations
