"""Set-intersection kernels: correctness and operation accounting."""

import numpy as np
import pytest

from repro.intersect import (
    OpCounter,
    galloping_count,
    merge_compsim,
    merge_count,
    pivot_compsim,
    pivot_vectorized_compsim,
    pivot_vectorized_count,
)


def ref_count(a, b):
    return len(set(a) & set(b))


CASES = [
    ([], []),
    ([1], []),
    ([], [2]),
    ([1, 2, 3], [1, 2, 3]),
    ([1, 3, 5], [2, 4, 6]),
    ([1, 2, 3, 4, 5], [3]),
    (list(range(0, 100, 2)), list(range(0, 100, 3))),
    (list(range(50)), list(range(25, 75))),
    ([5], list(range(100))),
    (list(range(0, 1000, 7)), list(range(0, 1000, 11))),
]


class TestFullCounts:
    @pytest.mark.parametrize("a,b", CASES)
    def test_merge_count(self, a, b):
        assert merge_count(a, b) == ref_count(a, b)

    @pytest.mark.parametrize("a,b", CASES)
    def test_galloping_count(self, a, b):
        assert galloping_count(a, b) == ref_count(a, b)

    @pytest.mark.parametrize("a,b", CASES)
    @pytest.mark.parametrize("lanes", [2, 4, 8, 16])
    def test_pivot_vectorized_count(self, a, b, lanes):
        assert pivot_vectorized_count(a, b, lanes=lanes) == ref_count(a, b)

    def test_accepts_ndarray(self):
        a = np.array([1, 4, 9])
        b = np.array([4, 9, 16])
        assert merge_count(a, b) == 2
        assert galloping_count(a, b) == 2
        assert pivot_vectorized_count(a, b) == 2

    def test_merge_count_cost_accounting(self):
        # Theorem 3.4's unit: len(a) + len(b) comparisons per call.
        counter = OpCounter()
        merge_count([1, 2, 3], [2, 3, 4, 5], counter)
        assert counter.scalar_cmp == 7
        assert counter.invocations == 1


class TestCompSimDecisions:
    @pytest.mark.parametrize("a,b", CASES)
    @pytest.mark.parametrize("min_cn", [1, 2, 3, 5, 10, 100])
    def test_all_kernels_agree_with_reference(self, a, b, min_cn):
        expected = ref_count(a, b) + 2 >= min_cn
        assert merge_compsim(a, b, min_cn) == expected
        assert pivot_compsim(a, b, min_cn) == expected
        for lanes in (2, 8, 16):
            assert (
                pivot_vectorized_compsim(a, b, min_cn, lanes=lanes) == expected
            )

    def test_trivial_sim_short_circuit(self):
        counter = OpCounter()
        assert merge_compsim([1, 2], [3, 4], 2, counter)
        assert counter.scalar_cmp == 0
        assert counter.early_exits == 1

    def test_trivial_nsim_short_circuit(self):
        counter = OpCounter()
        assert not merge_compsim([1], [2, 3, 4], 9, counter)
        assert counter.scalar_cmp == 0

    def test_early_termination_saves_comparisons(self):
        a = list(range(100))
        b = list(range(100))
        full = OpCounter()
        merge_count(a, b, full)
        early = OpCounter()
        assert merge_compsim(a, b, 5, early)  # Sim after 3 matches
        assert early.scalar_cmp < full.scalar_cmp / 10

    def test_nsim_early_exit_on_disjoint(self):
        a = list(range(0, 40, 2))
        b = list(range(1, 41, 2))
        counter = OpCounter()
        # Needs 22 overlap, du=dv=22 -> every advance shrinks a bound.
        assert not merge_compsim(a, b, 22, counter)
        assert counter.early_exits == 1
        assert counter.scalar_cmp < 40


class TestVectorizedAccounting:
    def test_vector_ops_counted(self):
        a = list(range(200))
        b = list(range(100, 300))
        counter = OpCounter()
        pivot_vectorized_count(a, b, lanes=16, counter=counter)
        assert counter.vector_ops > 0

    def test_long_skips_use_few_vector_ops(self):
        # One small array against a long run: each block op advances 16.
        a = list(range(320))
        b = [318, 319]
        counter = OpCounter()
        pivot_vectorized_compsim(a, b, 3, lanes=16, counter=counter)
        # ~320/16 = 20 blocks, far fewer than 320 scalar advances.
        assert counter.vector_ops <= 25

    def test_more_lanes_fewer_vector_ops_on_runs(self):
        a = list(range(1000))
        b = [998, 999]
        c8, c16 = OpCounter(), OpCounter()
        pivot_vectorized_count(a, b, lanes=8, counter=c8)
        pivot_vectorized_count(a, b, lanes=16, counter=c16)
        assert c16.vector_ops < c8.vector_ops

    def test_lanes_must_exceed_one(self):
        with pytest.raises(ValueError):
            pivot_vectorized_compsim([1], [1], 1, lanes=1)
        with pytest.raises(ValueError):
            pivot_vectorized_count([1], [1], lanes=1)

    def test_short_arrays_fall_back_to_scalar(self):
        counter = OpCounter()
        pivot_vectorized_compsim([1, 2, 3], [2, 3, 4], 4, lanes=16, counter=counter)
        assert counter.vector_ops == 0
        assert counter.scalar_cmp > 0


class TestCounter:
    def test_add_and_reset(self):
        a, b = OpCounter(), OpCounter()
        a.scalar_cmp = 3
        b.scalar_cmp = 4
        b.vector_ops = 2
        a.add(b)
        assert a.scalar_cmp == 7 and a.vector_ops == 2
        a.reset()
        assert a.scalar_cmp == 0

    def test_copy_independent(self):
        a = OpCounter()
        a.invocations = 5
        c = a.copy()
        c.invocations += 1
        assert a.invocations == 5

    def test_equality_and_dict(self):
        a, b = OpCounter(), OpCounter()
        assert a == b
        a.bound_updates = 1
        assert a != b
        assert a.as_dict()["bound_updates"] == 1
