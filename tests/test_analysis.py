"""Dataset analysis: similarity profiles, pruning profiles, core curves."""

import numpy as np
import pytest

from repro.analysis import (
    core_ratio_curve,
    edge_similarities,
    pruning_profile,
    similarity_histogram,
)
from repro.core import ppscan
from repro.graph import complete_graph, empty_graph, from_edges, star_graph
from repro.graph.generators import chung_lu, erdos_renyi, powerlaw_weights
from repro.types import CORE, ScanParams


class TestEdgeSimilarities:
    def test_triangle_all_one(self):
        sims = edge_similarities(complete_graph(3))
        assert np.allclose(sims, 1.0)

    def test_complete_graph_all_one(self):
        sims = edge_similarities(complete_graph(7))
        assert np.allclose(sims, 1.0)

    def test_star_values(self):
        # Hub (deg k) to leaf (deg 1): overlap 2, denom sqrt((k+1)*2).
        k = 5
        sims = edge_similarities(star_graph(k))
        expected = 2 / np.sqrt((k + 1) * 2)
        assert np.allclose(sims, expected)

    def test_bounds(self):
        g = erdos_renyi(60, 240, seed=1)
        sims = edge_similarities(g)
        assert np.all(sims > 0)
        assert np.all(sims <= 1.0 + 1e-12)

    def test_empty_graph(self):
        assert edge_similarities(empty_graph(4)).size == 0

    def test_consistent_with_predicate(self):
        """sigma >= eps iff the exact integer predicate says similar."""
        from repro.similarity import SimilarityEngine

        g = erdos_renyi(40, 160, seed=2)
        params = ScanParams(0.5, 2)
        engine = SimilarityEngine(g, params)
        sims = edge_similarities(g)
        for (u, v), sigma in zip(g.edge_list(), sims):
            expected = engine.compsim_exhaustive(int(u), int(v))
            # Away from the exact boundary, float sigma agrees.
            if abs(sigma - 0.5) > 1e-9:
                assert (sigma >= 0.5) == expected


class TestHistogram:
    def test_sums_to_edges(self):
        g = erdos_renyi(50, 200, seed=3)
        counts, bins = similarity_histogram(g, bins=5)
        assert counts.sum() == g.num_edges
        assert bins[0] == 0.0 and bins[-1] == 1.0


class TestPruningProfile:
    def test_partition_of_arcs(self):
        g = chung_lu(powerlaw_weights(150, 2.2), 900, seed=4)
        profile = pruning_profile(g, ScanParams(0.5, 3))
        assert (
            profile.pruned_sim + profile.pruned_nsim + profile.unknown
            == g.num_arcs
        )
        assert 0.0 <= profile.arcs_resolved_fraction <= 1.0

    def test_more_pruning_at_extreme_eps(self):
        g = chung_lu(powerlaw_weights(150, 2.2), 900, seed=4)
        mid = pruning_profile(g, ScanParams(0.5, 3))
        high = pruning_profile(g, ScanParams(0.95, 3))
        assert high.arcs_resolved_fraction >= mid.arcs_resolved_fraction

    def test_settled_roles_match_ppscan_prune_phase(self):
        """Vertices the profile calls settled never enter CheckCore."""
        g = erdos_renyi(60, 250, seed=5)
        params = ScanParams(0.8, 2)
        profile = pruning_profile(g, params)
        record = ppscan(g, params).record
        check_arcs = record.stage("core checking").total().arcs
        # If everything were settled, checking would scan nothing.
        if profile.roles_settled_fraction == 1.0:
            assert check_arcs == 0

    def test_empty_graph(self):
        profile = pruning_profile(empty_graph(3), ScanParams(0.5, 1))
        assert profile.arcs_resolved_fraction == 1.0


class TestCoreRatioCurve:
    def test_monotone_decreasing_in_eps(self):
        g = chung_lu(powerlaw_weights(200, 2.3), 1200, seed=6)
        curve = core_ratio_curve(g, (0.2, 0.5, 0.8), mu=3)
        values = list(curve.values())
        assert values == sorted(values, reverse=True)

    def test_matches_direct_count(self):
        g = erdos_renyi(50, 220, seed=7)
        curve = core_ratio_curve(g, (0.4,), mu=2)
        result = ppscan(g, ScanParams(0.4, 2))
        expected = np.count_nonzero(result.roles == CORE) / 50
        assert curve[0.4] == pytest.approx(expected)
