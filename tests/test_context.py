"""RunContext: reverse-arc index, cached thresholds, state arrays."""

import numpy as np

from repro.core import RunContext, reverse_arc_index
from repro.graph import complete_graph, from_edges
from repro.graph.generators import erdos_renyi
from repro.similarity import min_cn_threshold
from repro.types import ROLE_UNKNOWN, UNKNOWN, ScanParams


class TestReverseArcIndex:
    def test_definition(self):
        g = erdos_renyi(40, 150, seed=1)
        rev = reverse_arc_index(g)
        src = g.arc_source()
        for i in range(g.num_arcs):
            j = int(rev[i])
            assert src[j] == g.dst[i]
            assert g.dst[j] == src[i]

    def test_involution(self):
        g = complete_graph(7)
        rev = reverse_arc_index(g)
        assert np.array_equal(rev[rev], np.arange(g.num_arcs))

    def test_empty_graph(self):
        g = from_edges([], num_vertices=3)
        assert reverse_arc_index(g).size == 0


class TestRunContext:
    def test_initial_state(self):
        g = erdos_renyi(30, 100, seed=2)
        ctx = RunContext(g, ScanParams(0.5, 2))
        assert ctx.n == 30
        assert all(s == UNKNOWN for s in ctx.sim)
        assert all(r == ROLE_UNKNOWN for r in ctx.roles)
        assert len(ctx.sim) == g.num_arcs

    def test_adjacency_lists_match_graph(self):
        g = erdos_renyi(25, 80, seed=3)
        ctx = RunContext(g, ScanParams(0.5, 2))
        for u in range(g.num_vertices):
            assert ctx.adj[u] == g.neighbors(u).tolist()

    def test_mcn_matches_scalar(self):
        g = erdos_renyi(25, 80, seed=4)
        params = ScanParams(0.37, 2)
        ctx = RunContext(g, params)
        src = g.arc_source()
        frac = params.eps_fraction
        for i in range(g.num_arcs):
            assert ctx.mcn[i] == min_cn_threshold(
                frac, g.degree(int(src[i])), g.degree(int(g.dst[i]))
            )

    def test_compsim_arc_matches_engine(self):
        g = erdos_renyi(30, 120, seed=5)
        ctx = RunContext(g, ScanParams(0.5, 2))
        src = g.arc_source()
        for arc in range(0, g.num_arcs, 7):
            u, v = int(src[arc]), int(g.dst[arc])
            assert ctx.compsim_arc(u, arc) == ctx.engine.compsim_exhaustive(u, v)

    def test_arrays_export(self):
        g = from_edges([(0, 1), (1, 2)])
        ctx = RunContext(g, ScanParams(0.5, 1))
        assert ctx.roles_array().dtype == np.int8
        assert ctx.sim_array().shape == (4,)
