"""The central exactness property: every algorithm produces the identical
clustering, across random graphs, parameters, kernels, and backends."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    anyscan,
    assert_same_clustering,
    brute_force_scan,
    fast_structural_clustering,
    ppscan,
    pscan,
    scan,
    scanpp,
    scanxp,
)
from repro.graph import from_edges, from_networkx
from repro.graph.generators import (
    chung_lu,
    erdos_renyi,
    planted_partition,
    powerlaw_weights,
)
from repro.parallel import ProcessBackend
from repro.types import ScanParams

FAST_ALGOS = [
    scan,
    pscan,
    ppscan,
    scanxp,
    anyscan,
    scanpp,
    fast_structural_clustering,
]


@st.composite
def random_graph_and_params(draw):
    n = draw(st.integers(min_value=2, max_value=45))
    max_edges = n * (n - 1) // 2
    m = draw(st.integers(min_value=0, max_value=min(max_edges, 4 * n)))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    eps = draw(
        st.sampled_from([0.1, 0.25, 0.4, 0.5, 0.65, 0.8, 0.95, 1.0])
    )
    mu = draw(st.integers(min_value=1, max_value=6))
    return erdos_renyi(n, m, seed=seed), ScanParams(eps, mu)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(random_graph_and_params())
def test_all_algorithms_match_brute_force(case):
    graph, params = case
    reference = brute_force_scan(graph, params)
    for algo in FAST_ALGOS:
        assert_same_clustering(reference, algo(graph, params))


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=2, max_value=35),
    st.integers(min_value=0, max_value=120),
    st.integers(min_value=0, max_value=1000),
)
def test_ppscan_variants_agree(n, m, seed):
    graph = erdos_renyi(n, min(m, n * (n - 1) // 2), seed=seed)
    params = ScanParams(0.45, 2)
    reference = ppscan(graph, params)
    for kwargs in (
        dict(kernel="merge"),
        dict(kernel="pivot"),
        dict(lanes=4),
        dict(prune_phase=False),
        dict(two_phase_clustering=False),
        dict(task_threshold=1),
    ):
        assert_same_clustering(reference, ppscan(graph, params, **kwargs))


class TestRealisticGraphs:
    @pytest.mark.parametrize("eps", [0.2, 0.5, 0.8])
    @pytest.mark.parametrize("mu", [2, 5])
    def test_powerlaw_graph(self, eps, mu):
        graph = chung_lu(powerlaw_weights(250, 2.2), 1500, seed=1)
        params = ScanParams(eps, mu)
        reference = brute_force_scan(graph, params)
        for algo in FAST_ALGOS:
            assert_same_clustering(reference, algo(graph, params))

    def test_planted_partition(self):
        graph, _ = planted_partition(4, 25, 0.5, 0.02, seed=9)
        params = ScanParams(0.4, 3)
        reference = brute_force_scan(graph, params)
        for algo in FAST_ALGOS:
            assert_same_clustering(reference, algo(graph, params))

    def test_karate_club(self):
        nx = pytest.importorskip("networkx")
        graph = from_networkx(nx.karate_club_graph())
        for eps in (0.3, 0.6):
            params = ScanParams(eps, 2)
            reference = brute_force_scan(graph, params)
            for algo in FAST_ALGOS:
                assert_same_clustering(reference, algo(graph, params))


class TestBackendEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_ppscan_process_backend(self, workers):
        graph = chung_lu(powerlaw_weights(150, 2.3), 800, seed=2)
        params = ScanParams(0.4, 3)
        reference = ppscan(graph, params)
        parallel = ppscan(
            graph, params, backend=ProcessBackend(workers=workers)
        )
        assert_same_clustering(reference, parallel)

    def test_scanxp_process_backend(self):
        graph = erdos_renyi(80, 350, seed=3)
        params = ScanParams(0.5, 2)
        assert_same_clustering(
            scanxp(graph, params),
            scanxp(graph, params, backend=ProcessBackend(workers=2)),
        )

    def test_anyscan_process_backend(self):
        graph = erdos_renyi(80, 350, seed=4)
        params = ScanParams(0.5, 2)
        assert_same_clustering(
            anyscan(graph, params),
            anyscan(graph, params, backend=ProcessBackend(workers=2)),
        )

    def test_deterministic_across_runs(self):
        graph = erdos_renyi(70, 300, seed=5)
        params = ScanParams(0.45, 2)
        assert_same_clustering(ppscan(graph, params), ppscan(graph, params))


class TestMetamorphic:
    """Metamorphic properties: structure-preserving transformations of
    the input must transform the clustering predictably."""

    def test_disjoint_union(self):
        """cluster(G1 ⊔ G2) == cluster(G1) ⊔ cluster(G2) (shifted ids)."""
        g1 = erdos_renyi(30, 120, seed=51)
        g2 = erdos_renyi(25, 90, seed=52)
        params = ScanParams(0.4, 2)
        shift = g1.num_vertices
        combined_edges = [tuple(e) for e in g1.edge_list().tolist()] + [
            (u + shift, v + shift) for u, v in g2.edge_list().tolist()
        ]
        combined = from_edges(
            combined_edges, num_vertices=shift + g2.num_vertices
        )
        r1 = ppscan(g1, params)
        r2 = ppscan(g2, params)
        rc = ppscan(combined, params)
        import numpy as np

        assert np.array_equal(rc.roles[:shift], r1.roles)
        assert np.array_equal(rc.roles[shift:], r2.roles)
        assert np.array_equal(rc.core_labels[:shift], r1.core_labels)
        shifted = np.where(
            r2.core_labels >= 0, r2.core_labels + shift, -1
        )
        assert np.array_equal(rc.core_labels[shift:], shifted)

    def test_isolated_vertices_are_inert(self):
        g = erdos_renyi(30, 120, seed=53)
        padded = from_edges(
            [tuple(e) for e in g.edge_list().tolist()], num_vertices=40
        )
        params = ScanParams(0.4, 2)
        import numpy as np

        a = ppscan(g, params)
        b = ppscan(padded, params)
        assert np.array_equal(b.roles[:30], a.roles)
        assert np.array_equal(b.core_labels[:30], a.core_labels)
        assert np.all(b.core_labels[30:] == -1)


class TestEdgeListVariety:
    def test_barbell(self):
        # Two K5s joined by a path: clusters must not leak across the path.
        edges = [
            (u, v) for u in range(5) for v in range(u + 1, 5)
        ] + [
            (u + 7, v + 7) for u in range(5) for v in range(u + 1, 5)
        ] + [(4, 5), (5, 6), (6, 7)]
        graph = from_edges(edges)
        params = ScanParams(0.7, 3)
        reference = brute_force_scan(graph, params)
        assert reference.num_clusters == 2
        for algo in FAST_ALGOS:
            assert_same_clustering(reference, algo(graph, params))
