"""Graph statistics (Table 1/2 rows) and degree histograms."""

import numpy as np

from repro.graph import (
    complete_graph,
    degree_histogram,
    format_stats_table,
    from_edges,
    graph_stats,
    star_graph,
)


class TestGraphStats:
    def test_row_values(self):
        stats = graph_stats("k5", complete_graph(5))
        assert stats.num_vertices == 5
        assert stats.num_edges == 10
        assert stats.average_degree == 4.0
        assert stats.max_degree == 4

    def test_average_degree_matches_paper_convention(self):
        # d = 2|E| / |V| (orkut: 117M edges over 3M vertices -> 76.3).
        g = from_edges([(0, 1), (1, 2)])
        stats = graph_stats("path", g)
        assert stats.average_degree == 2 * 2 / 3

    def test_row_formatting(self):
        stats = graph_stats("big", star_graph(1500))
        name, v, e, avg, mx = stats.row()
        assert v == "1,501"
        assert e == "1,500"
        assert mx == "1,500"


class TestDegreeHistogram:
    def test_star(self):
        hist = degree_histogram(star_graph(4))
        assert hist[1] == 4
        assert hist[4] == 1

    def test_sums_to_n(self):
        g = complete_graph(6)
        assert degree_histogram(g).sum() == 6

    def test_isolated_counted(self):
        g = from_edges([(0, 1)], num_vertices=4)
        assert degree_histogram(g)[0] == 2


class TestFormatting:
    def test_table_contains_all_rows(self):
        rows = [
            graph_stats("a", complete_graph(4)),
            graph_stats("b", star_graph(3)),
        ]
        text = format_stats_table(rows, "Title")
        assert text.startswith("Title")
        assert "a" in text and "b" in text
        assert "avg d" in text
