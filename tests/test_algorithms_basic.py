"""Per-algorithm behaviour on canonical small graphs and parameter edges."""

import numpy as np
import pytest

from repro.core import anyscan, brute_force_scan, ppscan, pscan, scan, scanxp
from repro.graph import (
    complete_graph,
    cycle_graph,
    empty_graph,
    from_edges,
    path_graph,
    star_graph,
)
from repro.types import CORE, NONCORE, ScanParams

ALGORITHMS = [scan, pscan, ppscan, scanxp, anyscan, brute_force_scan]
ALGO_IDS = ["scan", "pscan", "ppscan", "scanxp", "anyscan", "brute"]


@pytest.mark.parametrize("algo", ALGORITHMS, ids=ALGO_IDS)
class TestCanonicalGraphs:
    def test_empty_graph(self, algo):
        r = algo(empty_graph(4), ScanParams(0.5, 1))
        assert r.num_clusters == 0
        assert np.all(r.roles == NONCORE)

    def test_single_vertex(self, algo):
        r = algo(empty_graph(1), ScanParams(0.5, 1))
        assert r.num_clusters == 0

    def test_triangle_all_cores(self, algo):
        # Hand-computed: closed overlap 3 >= ceil(0.5*3) = 2; sd = 2 >= mu.
        r = algo(complete_graph(3), ScanParams(0.5, 2))
        assert np.all(r.roles == CORE)
        assert r.num_clusters == 1
        assert r.core_labels.tolist() == [0, 0, 0]

    def test_complete_graph_one_cluster(self, algo):
        r = algo(complete_graph(8), ScanParams(0.8, 3))
        assert r.num_clusters == 1
        assert r.num_cores == 8

    def test_path_graph_mu2(self, algo):
        # Interior path vertices: neighbors share no common neighbors;
        # overlap = 2, thresholds > 2 for eps = 0.9 -> no cores.
        r = algo(path_graph(6), ScanParams(0.9, 2))
        assert r.num_cores == 0
        assert r.num_clusters == 0

    def test_cycle_eps_small_all_cores(self, algo):
        # eps = 0.1: threshold ceil(0.1 * 3) = 1 <= 2 -> every edge similar.
        r = algo(cycle_graph(6), ScanParams(0.1, 2))
        assert np.all(r.roles == CORE)
        assert r.num_clusters == 1

    def test_star_hub_not_core(self, algo):
        # Leaves share nothing with the hub beyond the pair itself.
        r = algo(star_graph(8), ScanParams(0.9, 2))
        assert r.roles[0] == NONCORE
        assert r.num_clusters == 0

    def test_mu_above_max_degree(self, algo):
        r = algo(complete_graph(5), ScanParams(0.1, 10))
        assert r.num_cores == 0

    def test_eps_one(self, algo):
        # eps = 1 demands full closed-neighborhood containment both ways.
        r = algo(complete_graph(4), ScanParams(1.0, 2))
        assert np.all(r.roles == CORE)  # K4: overlap 4 = threshold 4

    def test_mu_one(self, algo):
        # mu = 1: one similar neighbor suffices.
        r = algo(from_edges([(0, 1)]), ScanParams(0.5, 1))
        assert np.all(r.roles == CORE)
        assert r.num_clusters == 1

    def test_two_components_two_clusters(self, algo):
        g = from_edges(
            [(0, 1), (1, 2), (0, 2), (10, 11), (11, 12), (10, 12)],
            num_vertices=13,
        )
        r = algo(g, ScanParams(0.5, 2))
        assert r.num_clusters == 2
        assert set(r.cluster_ids.tolist()) == {0, 10}

    def test_cluster_id_is_min_core_id(self, algo):
        g = from_edges([(3, 4), (4, 5), (3, 5)])
        r = algo(g, ScanParams(0.5, 2))
        assert r.cluster_ids.tolist() == [3]


class TestNonCoreMembership:
    def test_border_vertex_in_two_clusters(self):
        # Two triangles sharing border vertex 6 via one edge each; with the
        # right eps, 6 is similar to a core of each cluster but not a core.
        g = from_edges(
            [
                (0, 1), (1, 2), (0, 2),
                (3, 4), (4, 5), (3, 5),
                (6, 0), (6, 3),
                (6, 1), (6, 4),
            ]
        )
        params = ScanParams(0.55, 2)
        ref = brute_force_scan(g, params)
        member = ref.membership()
        if len(member[6]) == 2:  # the interesting configuration
            for algo in (scan, pscan, ppscan, scanxp, anyscan):
                assert algo(g, params).membership()[6] == member[6]

    def test_isolated_vertices_ignored(self):
        g = from_edges([(0, 1), (1, 2), (0, 2)], num_vertices=6)
        r = ppscan(g, ScanParams(0.5, 2))
        assert np.all(r.roles[3:] == NONCORE)
        assert r.clusters()[0].tolist() == [0, 1, 2]


class TestRecords:
    def test_all_parallel_algorithms_attach_records(self):
        g = complete_graph(10)
        params = ScanParams(0.5, 3)
        for algo in (scan, pscan, ppscan, scanxp, anyscan):
            record = algo(g, params).record
            assert record is not None
            assert record.wall_seconds > 0
            assert len(record.stages) >= 2

    def test_ppscan_stage_names(self):
        from repro.core import PPSCAN_STAGES

        r = ppscan(complete_graph(8), ScanParams(0.5, 2))
        assert tuple(s.name for s in r.record.stages) == PPSCAN_STAGES
