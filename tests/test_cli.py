"""Command-line interface."""

import pytest

from repro.cli import main
from repro.graph import write_edge_list
from repro.graph.generators import erdos_renyi


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.txt"
    write_edge_list(erdos_renyi(40, 160, seed=1), path)
    return str(path)


class TestCluster:
    def test_basic(self, graph_file, capsys):
        assert main(["cluster", graph_file, "--eps", "0.4", "--mu", "2"]) == 0
        out = capsys.readouterr().out
        assert "ppSCAN" in out
        assert "cores=" in out

    @pytest.mark.parametrize(
        "algo", ["scan", "pscan", "ppscan", "scanxp", "anyscan"]
    )
    def test_all_algorithms(self, graph_file, capsys, algo):
        assert main(["cluster", graph_file, "--algorithm", algo]) == 0
        assert "clusters" in capsys.readouterr().out

    def test_show_clusters(self, graph_file, capsys):
        main(["cluster", graph_file, "--eps", "0.2", "--show-clusters"])
        out = capsys.readouterr().out
        assert "cluster " in out

    def test_workers_flag(self, graph_file, capsys):
        assert main(["cluster", graph_file, "--workers", "2"]) == 0

    def test_workers_ignored_for_sequential(self, graph_file, capsys):
        assert (
            main(["cluster", graph_file, "--algorithm", "pscan", "--workers", "2"])
            == 0
        )
        assert "ignored" in capsys.readouterr().err


class TestFaultTolerance:
    def test_chaos_recovers_and_exits_zero(self, graph_file, capsys):
        assert (
            main(
                [
                    "cluster",
                    graph_file,
                    "--workers",
                    "2",
                    "--chaos-plan",
                    "seed=42,tasks=16,kill=1",
                ]
            )
            == 0
        )
        assert "clusters" in capsys.readouterr().out

    def test_poison_task_exits_three(self, graph_file, capsys):
        code = main(
            [
                "cluster",
                graph_file,
                "--workers",
                "2",
                "--chaos-plan",
                "seed=1,tasks=16,poison=1",
            ]
        )
        assert code == 3
        err = capsys.readouterr().err
        assert "execution fault" in err
        assert "quarantined poison task" in err
        assert "recovery events:" in err

    def test_chaos_plan_file(self, graph_file, tmp_path, capsys):
        from repro.parallel import FaultPlan

        plan_path = tmp_path / "plan.json"
        FaultPlan.from_seed(42, tasks=16, kills=1).save(plan_path)
        assert (
            main(
                [
                    "cluster",
                    graph_file,
                    "--workers",
                    "2",
                    "--chaos-plan",
                    str(plan_path),
                ]
            )
            == 0
        )

    def test_retry_and_timeout_flags_accepted(self, graph_file):
        assert (
            main(
                [
                    "cluster",
                    graph_file,
                    "--workers",
                    "2",
                    "--max-retries",
                    "5",
                    "--task-timeout",
                    "30",
                ]
            )
            == 0
        )

    def test_gsindex_algorithm_choice(self, graph_file, capsys):
        assert main(["cluster", graph_file, "--algorithm", "gsindex"]) == 0
        assert "clusters" in capsys.readouterr().out


class TestCompareAndSweep:
    def test_compare_all_agree(self, graph_file, capsys):
        assert main(["compare", graph_file, "--eps", "0.4", "--mu", "2"]) == 0
        out = capsys.readouterr().out
        assert "all algorithms agree" in out
        for name in ("SCAN", "pSCAN", "SCAN++", "anySCAN", "SCAN-XP", "ppSCAN"):
            assert name in out

    def test_sweep_grid(self, graph_file, capsys):
        assert (
            main(["sweep", graph_file, "--eps", "0.3,0.7", "--mu", "1,3"]) == 0
        )
        out = capsys.readouterr().out
        assert out.count("\n") >= 6  # header + separator + 4 rows

    def test_sweep_csv_export(self, graph_file, tmp_path, capsys):
        csv_path = str(tmp_path / "grid.csv")
        assert (
            main(
                ["sweep", graph_file, "--eps", "0.5", "--mu", "2", "--csv", csv_path]
            )
            == 0
        )
        lines = open(csv_path).read().splitlines()
        assert lines[0].startswith("eps,mu,clusters")
        assert len(lines) == 2

    def test_cluster_save(self, graph_file, tmp_path, capsys):
        out_path = str(tmp_path / "result.npz")
        assert main(["cluster", graph_file, "--save", out_path]) == 0
        from repro.core import ClusteringResult

        loaded = ClusteringResult.load(out_path)
        assert loaded.num_vertices == 40


class TestStats:
    def test_stats(self, graph_file, capsys):
        assert main(["stats", graph_file]) == 0
        out = capsys.readouterr().out
        assert "|V| = 40" in out
        assert "|E| = 160" in out


class TestGenerate:
    def test_standin(self, tmp_path, capsys):
        out_path = str(tmp_path / "o.txt")
        assert main(["generate", "orkut", out_path, "--scale", "0.05"]) == 0
        assert "wrote" in capsys.readouterr().out
        assert main(["stats", out_path]) == 0

    def test_roll(self, tmp_path, capsys):
        out_path = str(tmp_path / "r.txt")
        assert (
            main(
                [
                    "generate",
                    "roll",
                    out_path,
                    "--vertices",
                    "300",
                    "--avg-degree",
                    "8",
                ]
            )
            == 0
        )
        assert "wrote" in capsys.readouterr().out


class TestBench:
    def test_table1(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        from repro.bench import clear_caches

        clear_caches()
        assert main(["bench", "table1", "--scale", "0.05"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench", "fig99"])


class TestVerify:
    def test_verify_ok(self, graph_file, tmp_path, capsys):
        saved = str(tmp_path / "c.npz")
        main(["cluster", graph_file, "--eps", "0.4", "--save", saved])
        capsys.readouterr()
        assert main(["verify", graph_file, saved]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_detects_wrong_graph(self, graph_file, tmp_path, capsys):
        from repro.graph import write_edge_list
        from repro.graph.generators import erdos_renyi

        saved = str(tmp_path / "c.npz")
        main(["cluster", graph_file, "--eps", "0.4", "--save", saved])
        other = tmp_path / "other.txt"
        write_edge_list(erdos_renyi(40, 200, seed=99), other)
        capsys.readouterr()
        assert main(["verify", str(other), saved]) == 1
        assert "INVALID" in capsys.readouterr().out


class TestBenchOut:
    def test_bench_out_writes_files(self, tmp_path, capsys, monkeypatch):
        from repro.bench import clear_caches

        clear_caches()
        out = tmp_path / "results"
        assert (
            main(
                ["bench", "table2", "--scale", "0.05", "--out", str(out)]
            )
            == 0
        )
        assert (out / "table2.txt").exists()


class TestProfile:
    def test_profile_output(self, graph_file, capsys):
        assert main(["profile", graph_file, "--mu", "2", "--eps", "0.3,0.6"]) == 0
        out = capsys.readouterr().out
        assert "similarity distribution" in out
        assert "core fraction" in out
        assert "0.3" in out and "0.6" in out


class TestParser:
    def test_no_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            main(["--version"])
        assert capsys.readouterr().out.strip()


class TestValidateCommand:
    def test_valid_graph_ok(self, graph_file, capsys):
        assert main(["validate", graph_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_malformed_edge_list(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n1 -2\n")
        assert main(["validate", str(path)]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out and f"{path}:2" in out

    def test_truncated_binary(self, tmp_path, capsys):
        from repro.graph import write_csr_binary
        from repro.graph.generators import erdos_renyi as er

        path = tmp_path / "g.bin"
        write_csr_binary(er(30, 90, seed=2), path)
        path.write_bytes(path.read_bytes()[:40])
        assert main(["validate", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_missing_file(self, tmp_path, capsys):
        assert main(["validate", str(tmp_path / "nope.txt")]) == 1
        assert "cannot read" in capsys.readouterr().err


class TestFingerprintAndStdin:
    """Every subcommand names the graph fingerprint; stats/validate
    read edge lists from stdin via ``-``."""

    def _fingerprint_of(self, graph_file):
        from repro.cache import graph_fingerprint
        from repro.graph import load_graph

        return graph_fingerprint(load_graph(graph_file))

    def _stdin(self, monkeypatch, graph_file):
        import io
        import sys

        monkeypatch.setattr(
            sys, "stdin", io.StringIO(open(graph_file).read())
        )

    @pytest.mark.parametrize(
        "argv",
        [
            ["cluster", "{g}", "--eps", "0.4", "--mu", "2"],
            ["stats", "{g}"],
            ["validate", "{g}"],
            ["compare", "{g}", "--eps", "0.4", "--mu", "2"],
            ["sweep", "{g}", "--eps", "0.5", "--mu", "2"],
            ["profile", "{g}", "--eps", "0.4", "--mu", "2"],
        ],
    )
    def test_subcommands_report_fingerprint(
        self, graph_file, capsys, argv
    ):
        fingerprint = self._fingerprint_of(graph_file)
        argv = [a.format(g=graph_file) for a in argv]
        assert main(argv) == 0
        assert f"fingerprint: {fingerprint}" in capsys.readouterr().out

    def test_generate_reports_fingerprint(self, tmp_path, capsys):
        out_path = str(tmp_path / "g.txt")
        assert main(["generate", "orkut", out_path, "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert f"fingerprint: {self._fingerprint_of(out_path)}" in out

    def test_stats_reads_stdin(self, graph_file, capsys, monkeypatch):
        self._stdin(monkeypatch, graph_file)
        assert main(["stats", "-"]) == 0
        out = capsys.readouterr().out
        assert "|V| = 40" in out
        # Same bytes, same fingerprint as the file-based path.
        assert f"fingerprint: {self._fingerprint_of(graph_file)}" in out

    def test_validate_reads_stdin(self, graph_file, capsys, monkeypatch):
        self._stdin(monkeypatch, graph_file)
        assert main(["validate", "-"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_validate_rejects_bad_stdin(self, capsys, monkeypatch):
        import io
        import sys

        monkeypatch.setattr(sys, "stdin", io.StringIO("0 1\n1 -2\n"))
        assert main(["validate", "-"]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_serve_parser_registered(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["serve", "--help"])
        assert exit_info.value.code == 0
        out = capsys.readouterr().out
        for flag in ("--port", "--graph", "--max-graphs",
                     "--max-concurrent-queries", "--memory-budget-mb"):
            assert flag in out


class TestCheckpointFlags:
    def test_cluster_writes_checkpoints(self, graph_file, tmp_path, capsys):
        ck = tmp_path / "ck"
        assert (
            main(
                [
                    "cluster",
                    graph_file,
                    "--checkpoint-dir",
                    str(ck),
                    "--checkpoint-every",
                    "8",
                ]
            )
            == 0
        )
        assert (ck / "manifest.json").exists()
        assert list(ck.glob("ckpt-*.npz"))

    def test_resume_reproduces_output(self, graph_file, tmp_path, capsys):
        ck = tmp_path / "ck"
        args = ["cluster", graph_file, "--checkpoint-dir", str(ck)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args + ["--resume"]) == 0
        second = capsys.readouterr().out

        def stable(text):
            return [
                line
                for line in text.splitlines()
                if "wall time" not in line
            ]

        assert stable(first) == stable(second)

    def test_resume_requires_checkpoint_dir(self, graph_file):
        with pytest.raises(SystemExit, match="--checkpoint-dir"):
            main(["cluster", graph_file, "--resume"])

    def test_resume_mismatch_exit_code(self, graph_file, tmp_path, capsys):
        from repro.graph import write_edge_list as wel
        from repro.graph.generators import erdos_renyi as er

        ck = tmp_path / "ck"
        assert (
            main(["cluster", graph_file, "--checkpoint-dir", str(ck)]) == 0
        )
        other = tmp_path / "other.txt"
        wel(er(40, 160, seed=2), other)
        code = main(
            [
                "cluster",
                str(other),
                "--checkpoint-dir",
                str(ck),
                "--resume",
            ]
        )
        assert code == 4
        assert "refusing to resume" in capsys.readouterr().err

    def test_checkpoint_ignored_for_unsupported_algorithm(
        self, graph_file, tmp_path, capsys
    ):
        assert (
            main(
                [
                    "cluster",
                    graph_file,
                    "--algorithm",
                    "scan",
                    "--checkpoint-dir",
                    str(tmp_path / "ck"),
                ]
            )
            == 0
        )
        assert "ignored" in capsys.readouterr().err

    def test_sweep_checkpoint_resume(self, graph_file, tmp_path, capsys):
        ck = tmp_path / "ck"
        args = [
            "sweep",
            graph_file,
            "--eps",
            "0.3,0.5",
            "--mu",
            "2",
            "--checkpoint-dir",
            str(ck),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "0.3" in out and "0.5" in out


class TestObservabilityFlags:
    def test_cluster_ledger_appends_record(self, graph_file, tmp_path, capsys):
        ledger_path = tmp_path / "ledger.jsonl"
        assert (
            main(["cluster", graph_file, "--ledger", str(ledger_path)]) == 0
        )
        assert "ledger: appended" in capsys.readouterr().out
        from repro.obs import RunLedger

        (record,) = RunLedger(ledger_path).read()
        assert record["kind"] == "cluster"
        assert record["workload"]["graph"] == graph_file
        assert "graph_fingerprint" in record["workload"]
        assert record["stage_walls"]
        assert record["metrics"]
        assert record["memory"]["parent_peak_rss_kb"] > 0

    def test_cluster_ledger_runs_are_comparable(
        self, graph_file, tmp_path, capsys
    ):
        ledger_path = tmp_path / "ledger.jsonl"
        for _ in range(2):
            assert (
                main(["cluster", graph_file, "--ledger", str(ledger_path)])
                == 0
            )
        from repro.obs import RunLedger

        first, second = RunLedger(ledger_path).read()
        assert first["workload_key"] == second["workload_key"]
        assert first["options_key"] == second["options_key"]

    def test_compare_table_and_csv_gain_stage_and_rss_columns(
        self, graph_file, tmp_path, capsys
    ):
        csv_path = tmp_path / "cmp.csv"
        assert (
            main(
                ["compare", graph_file, "--eps", "0.4", "--mu", "2",
                 "--csv", str(csv_path)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "stage wall" in out and "peak RSS" in out
        header = csv_path.read_text().splitlines()[0]
        assert "stage wall" in header and "peak RSS" in header

    def test_compare_ledger_records_leg_stats(
        self, graph_file, tmp_path, capsys
    ):
        ledger_path = tmp_path / "ledger.jsonl"
        assert (
            main(
                ["compare", graph_file, "--eps", "0.4", "--mu", "2",
                 "--ledger", str(ledger_path)]
            )
            == 0
        )
        from repro.obs import RunLedger

        (record,) = RunLedger(ledger_path).read()
        assert record["kind"] == "compare"
        assert record["legs"]
        for stats in record["legs"].values():
            assert stats["wall_seconds"] >= 0.0

    def test_profile_spans_prints_flight_recorder(self, graph_file, capsys):
        assert main(["cluster", graph_file, "--profile-spans"]) == 0
        assert "profile:" in capsys.readouterr().out

    def test_profile_memory_prints_phase_deltas(self, graph_file, capsys):
        assert main(["cluster", graph_file, "--profile-memory"]) == 0
        assert "profile:" in capsys.readouterr().out

    def test_progress_flag_runs_quietly_without_tty(self, graph_file):
        assert main(["cluster", graph_file, "--progress"]) == 0

    def test_history_and_report_over_cli_ledger(
        self, graph_file, tmp_path, capsys
    ):
        ledger_path = tmp_path / "ledger.jsonl"
        for _ in range(2):
            main(["cluster", graph_file, "--ledger", str(ledger_path)])
        capsys.readouterr()
        assert main(["history", str(ledger_path)]) == 0
        out = capsys.readouterr().out
        assert "2 record(s)" in out and "cluster" in out
        om_path = tmp_path / "metrics.prom"
        assert (
            main(
                ["report", str(ledger_path), "--openmetrics", str(om_path)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "trend report" in out
        assert om_path.read_text().endswith("# EOF\n")

    def test_history_json_mode(self, graph_file, tmp_path, capsys):
        import json as _json

        ledger_path = tmp_path / "ledger.jsonl"
        main(["cluster", graph_file, "--ledger", str(ledger_path)])
        capsys.readouterr()
        assert main(["history", str(ledger_path), "--json"]) == 0
        records = _json.loads(capsys.readouterr().out)
        assert len(records) == 1 and records[0]["kind"] == "cluster"


class TestStream:
    @pytest.fixture
    def script_file(self, tmp_path, graph_file):
        from repro.graph import read_edge_list
        from repro.streaming import random_edit_script

        script = random_edit_script(
            read_edge_list(graph_file), batches=3, batch_size=6, seed=5
        )
        return str(script.save(tmp_path / "edits.txt"))

    def test_stream_verify(self, graph_file, script_file, capsys):
        assert (
            main(
                [
                    "stream", graph_file, script_file,
                    "--eps", "0.4,0.6", "--mu", "2", "--verify",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "batch" in out
        assert "verify: all 3 checkpoints bit-identical" in out
        assert "fingerprint" in out

    def test_stream_csv_and_ledger(
        self, graph_file, script_file, tmp_path, capsys
    ):
        csv = tmp_path / "stream.csv"
        ledger = tmp_path / "ledger.jsonl"
        assert (
            main(
                [
                    "stream", graph_file, script_file,
                    "--csv", str(csv), "--ledger", str(ledger),
                ]
            )
            == 0
        )
        rows = csv.read_text().strip().splitlines()
        assert len(rows) == 4  # header + 3 batches
        assert ledger.exists()
        import json

        records = [
            json.loads(line) for line in ledger.read_text().splitlines()
        ]
        assert len(records) == 3
        assert all(r["kind"] == "stream" for r in records)

    def test_stream_rejects_bad_points(self, graph_file, script_file):
        assert (
            main(["stream", graph_file, script_file, "--eps", "nope"]) == 2
        )
