"""Post-hoc clustering verification API."""

import numpy as np
import pytest

from repro.core import (
    ClusteringResult,
    ClusteringVerificationError,
    fast_structural_clustering,
    ppscan,
    verify_clustering,
)
from repro.graph.generators import chung_lu, erdos_renyi, powerlaw_weights
from repro.types import CORE, NONCORE, ScanParams


@pytest.fixture(scope="module")
def case():
    g = erdos_renyi(60, 260, seed=41)
    params = ScanParams(0.4, 2)
    return g, params, ppscan(g, params)


class TestAcceptsCorrect:
    def test_ppscan_output(self, case):
        g, params, result = case
        verify_clustering(g, result)

    def test_fast_mode_output(self, case):
        g, params, _ = case
        verify_clustering(g, fast_structural_clustering(g, params))

    def test_explicit_params(self, case):
        g, params, result = case
        verify_clustering(g, result, params)

    def test_powerlaw(self):
        g = chung_lu(powerlaw_weights(150, 2.3), 800, seed=1)
        params = ScanParams(0.3, 3)
        verify_clustering(g, ppscan(g, params))


def _tampered(result, **overrides) -> ClusteringResult:
    fields = dict(
        algorithm=result.algorithm,
        params=result.params,
        roles=result.roles.copy(),
        core_labels=result.core_labels.copy(),
        noncore_pairs=result.noncore_pairs.copy(),
    )
    fields.update(overrides)
    return ClusteringResult(**fields)


class TestRejectsTampered:
    def test_flipped_role(self, case):
        g, params, result = case
        roles = result.roles.copy()
        roles[0] = NONCORE if roles[0] == CORE else CORE
        with pytest.raises(ClusteringVerificationError, match="role"):
            verify_clustering(g, _tampered(result, roles=roles))

    def test_core_without_label(self, case):
        g, params, result = case
        cores = np.flatnonzero(result.roles == CORE)
        if cores.size == 0:
            pytest.skip("no cores at these params")
        labels = result.core_labels.copy()
        labels[cores[0]] = -1
        with pytest.raises(ClusteringVerificationError):
            verify_clustering(g, _tampered(result, core_labels=labels))

    def test_merged_clusters(self, case):
        g, params, result = case
        ids = result.cluster_ids
        if ids.size < 2:
            pytest.skip("needs two clusters")
        labels = result.core_labels.copy()
        labels[labels == ids[1]] = ids[0]
        with pytest.raises(ClusteringVerificationError):
            verify_clustering(g, _tampered(result, core_labels=labels))

    def test_phantom_membership(self, case):
        g, params, result = case
        cores = np.flatnonzero(result.roles == CORE)
        noncores = np.flatnonzero(result.roles == NONCORE)
        if cores.size == 0 or noncores.size == 0:
            pytest.skip("needs both roles")
        extra = np.vstack(
            [
                result.noncore_pairs,
                [[int(result.core_labels[cores[0]]), int(noncores[0])]],
            ]
        )
        tampered = _tampered(result, noncore_pairs=extra)
        if tampered.same_clustering(result):
            pytest.skip("added pair already present")
        with pytest.raises(ClusteringVerificationError):
            verify_clustering(g, tampered)

    def test_size_mismatch(self, case):
        g, params, result = case
        other = erdos_renyi(10, 15, seed=0)
        with pytest.raises(ClusteringVerificationError, match="vertices"):
            verify_clustering(other, result)

    def test_wrong_params(self, case):
        g, params, result = case
        strict = ScanParams(0.95, 5)
        if ppscan(g, strict).same_clustering(result):
            pytest.skip("degenerate agreement")
        with pytest.raises(ClusteringVerificationError):
            verify_clustering(g, result, strict)
