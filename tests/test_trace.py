"""Schedule-trace reporting."""

import pytest

from repro.metrics import StageRecord, TaskCost
from repro.parallel import CPU_SERVER, KNL_SERVER, trace_stage


def make_stage(costs):
    return StageRecord("s", [TaskCost(scalar_cmp=c) for c in costs])


class TestTrace:
    def test_workers_follow_throughput(self):
        stage = make_stage([100] * 20)
        trace = trace_stage(stage, KNL_SERVER, 256)
        assert trace.workers == round(KNL_SERVER.throughput(256))

    def test_total_work_and_makespan(self):
        stage = make_stage([10, 20, 30])
        trace = trace_stage(stage, CPU_SERVER, 1)
        assert trace.total_work == pytest.approx(60 * CPU_SERVER.scalar_cpi)
        assert trace.makespan == pytest.approx(trace.total_work)
        assert trace.imbalance == pytest.approx(1.0)

    def test_imbalance_detects_straggler(self):
        stage = make_stage([1000] + [1] * 10)
        trace = trace_stage(stage, CPU_SERVER, 4)
        assert trace.imbalance > 2.0

    def test_tasks_per_worker_sum(self):
        stage = make_stage([5] * 13)
        trace = trace_stage(stage, CPU_SERVER, 4)
        assert sum(trace.tasks_per_worker()) == 13

    def test_report_text(self):
        stage = make_stage([5, 6, 7])
        text = trace_stage(stage, CPU_SERVER, 2).report()
        assert "schedule trace" in text
        assert "worker 0" in text

    def test_report_truncates_many_workers(self):
        stage = make_stage([5] * 100)
        text = trace_stage(stage, KNL_SERVER, 256).report(max_workers=4)
        assert "more workers" in text

    def test_empty_stage(self):
        trace = trace_stage(StageRecord("empty"), CPU_SERVER, 2)
        assert trace.makespan == 0.0
        assert trace.imbalance == 1.0
