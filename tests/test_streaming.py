"""Streaming batched maintenance: edit scripts, engine, differential."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache import SimilarityStore
from repro.cache.store import graph_fingerprint
from repro.core import DynamicGSIndex, GSIndex
from repro.graph import DynamicGraph
from repro.graph.generators import erdos_renyi
from repro.streaming import (
    DifferentialMismatch,
    EditBatch,
    EditOp,
    EditScript,
    StreamingEngine,
    build_corpus,
    random_edit_script,
    replay_differential,
)
from repro.types import ScanParams


# ---------------------------------------------------------------------------
# Edit scripts
# ---------------------------------------------------------------------------


class TestEditScript:
    def test_text_roundtrip(self):
        script = EditScript(
            [
                EditBatch([EditOp(True, 0, 3), EditOp(False, 2, 1)]),
                EditBatch([EditOp(True, 4, 5)]),
            ],
            meta={"seed": 7, "kind": "mixed"},
        )
        again = EditScript.loads(script.dumps())
        assert again.meta == script.meta
        assert [b.ops for b in again] == [b.ops for b in script]

    def test_loads_comments_and_implicit_first_batch(self):
        script = EditScript.loads(
            "# a comment\n+ 0 1\n- 2 3\nbatch\n+ 4 5\n"
        )
        assert len(script) == 2
        assert script.batches[0].ops == [
            EditOp(True, 0, 1),
            EditOp(False, 2, 3),
        ]
        assert script.batches[1].ops == [EditOp(True, 4, 5)]

    def test_loads_rejects_malformed_line(self):
        with pytest.raises(ValueError, match="line 2"):
            EditScript.loads("batch\n+ 0\n")

    def test_save_load(self, tmp_path):
        script = random_edit_script(
            erdos_renyi(20, 40, seed=3), batches=3, batch_size=5, seed=9
        )
        path = script.save(tmp_path / "edits.txt")
        again = EditScript.load(path)
        assert again.meta == script.meta
        assert [b.ops for b in again] == [b.ops for b in script]

    def test_coerce_shapes(self):
        from_triples = EditBatch.coerce(
            [("+", 0, 1), ("remove", 2, 3), (True, 4, 5)]
        )
        assert from_triples.ops == [
            EditOp(True, 0, 1),
            EditOp(False, 2, 3),
            EditOp(True, 4, 5),
        ]
        from_dict = EditBatch.coerce(
            {"insert": [[0, 1]], "remove": [[2, 3]]}
        )
        assert from_dict.ops == [EditOp(True, 0, 1), EditOp(False, 2, 3)]
        assert EditBatch.coerce(from_dict) is from_dict

    def test_coerce_rejects_garbage(self):
        with pytest.raises(ValueError, match="unknown edit kind"):
            EditBatch.coerce([("?", 0, 1)])
        with pytest.raises(ValueError, match="unknown edit-batch key"):
            EditBatch.coerce({"inserts": [[0, 1]]})

    def test_inverse_shapes(self):
        batch = EditBatch([EditOp(True, 0, 1), EditOp(False, 2, 3)])
        assert batch.inverse().ops == [
            EditOp(True, 2, 3),
            EditOp(False, 0, 1),
        ]
        script = EditScript([batch, EditBatch([EditOp(True, 4, 5)])])
        inv = script.inverse()
        assert len(inv) == 2
        assert inv.batches[0].ops == [EditOp(False, 4, 5)]
        assert inv.meta.get("inverse") is True


class TestRandomEditScript:
    def test_deterministic_for_seed(self):
        graph = erdos_renyi(30, 80, seed=1)
        a = random_edit_script(graph, seed=5, batches=4, batch_size=8)
        b = random_edit_script(graph, seed=5, batches=4, batch_size=8)
        c = random_edit_script(graph, seed=6, batches=4, batch_size=8)
        assert [x.ops for x in a] == [x.ops for x in b]
        assert [x.ops for x in a] != [x.ops for x in c]

    def test_kinds_respected(self):
        graph = erdos_renyi(30, 80, seed=2)
        inserts = random_edit_script(
            graph, kind="insert", seed=3, batches=3, batch_size=6
        )
        assert all(op.insert for batch in inserts for op in batch)
        deletes = random_edit_script(
            graph, kind="delete", seed=3, batches=3, batch_size=6
        )
        assert all(not op.insert for batch in deletes for op in batch)
        with pytest.raises(ValueError):
            random_edit_script(graph, kind="replace")

    def test_script_is_replayable_without_validation_errors(self):
        # Every op must be in-range and never a self loop; skipped ops
        # (the deliberate no-op rate) are fine, crashes are not.
        graph = erdos_renyi(25, 60, seed=4)
        script = random_edit_script(
            graph, seed=11, batches=5, batch_size=10, noop_rate=0.3
        )
        dyn = DynamicGraph.from_csr(graph)
        for batch in script:
            for op in batch:
                if op.insert:
                    dyn.insert_edge(op.u, op.v)
                else:
                    dyn.remove_edge(op.u, op.v)

    def test_delete_script_stops_when_edges_exhausted(self):
        graph = erdos_renyi(6, 5, seed=5)
        script = random_edit_script(
            graph, kind="delete", seed=1, batches=10, batch_size=10,
            noop_rate=0.0,
        )
        removals = [op for batch in script for op in batch]
        assert len(removals) <= graph.num_edges
        assert all(not op.insert for op in removals)


# ---------------------------------------------------------------------------
# Batched index maintenance
# ---------------------------------------------------------------------------


class TestApplyBatch:
    def test_matches_per_edge_maintenance(self):
        csr = erdos_renyi(40, 140, seed=6)
        batched = DynamicGSIndex(DynamicGraph.from_csr(csr))
        serial = DynamicGSIndex(DynamicGraph.from_csr(csr))
        script = random_edit_script(csr, seed=8, batches=4, batch_size=12)
        params = ScanParams(0.5, 2)
        for batch in script:
            stats = batched.apply_batch(batch)
            applied = 0
            for op in batch:
                if op.insert:
                    applied += serial.insert_edge(op.u, op.v)
                else:
                    applied += serial.remove_edge(op.u, op.v)
            assert stats.effective == applied
            assert batched.query(params).same_clustering(
                serial.query(params)
            )

    def test_validates_atomically_before_mutating(self):
        csr = erdos_renyi(20, 50, seed=7)
        idx = DynamicGSIndex(DynamicGraph.from_csr(csr))
        fp_before = graph_fingerprint(idx.graph.snapshot())
        # Third op is out of range: nothing at all may be applied.
        with pytest.raises(IndexError):
            idx.apply_batch(
                [("+", 0, 19), ("-", 0, 1), ("+", 0, 99)]
            )
        assert graph_fingerprint(idx.graph.snapshot()) == fp_before
        with pytest.raises(ValueError):
            idx.apply_batch([("+", 0, 19), ("+", 3, 3)])
        assert graph_fingerprint(idx.graph.snapshot()) == fp_before

    def test_reports_touched_frontier_and_dirty(self):
        idx = DynamicGSIndex(DynamicGraph(6))
        idx.apply_batch([("+", 0, 1), ("+", 1, 2)])
        stats = idx.apply_batch([("+", 2, 3), ("+", 2, 3)])
        assert stats.inserted == 1 and stats.skipped == 1
        assert stats.touched == (2, 3)
        # dirty = touched plus their post-batch neighbors
        assert stats.dirty == (1, 2, 3)
        assert (2, 3) in stats.frontier

    def test_noop_batch_reports_no_work(self):
        csr = erdos_renyi(15, 30, seed=9)
        idx = DynamicGSIndex(DynamicGraph.from_csr(csr))
        u, v = map(int, csr.edge_list()[0])
        stats = idx.apply_batch([("+", u, v)])
        assert stats.effective == 0 and stats.skipped == 1
        assert stats.touched == () and stats.frontier == ()


# ---------------------------------------------------------------------------
# Engine: differential correctness
# ---------------------------------------------------------------------------

POINTS = (ScanParams(0.4, 2), ScanParams(0.7, 3))


class TestDifferential:
    @pytest.mark.parametrize("kind", ["insert", "delete", "mixed"])
    def test_er_fixture_every_kind(self, kind):
        graph = erdos_renyi(50, 160, seed=12)
        script = random_edit_script(
            graph, kind=kind, seed=13, batches=5, batch_size=10
        )
        report = replay_differential(
            graph, script, POINTS, store=SimilarityStore(), kind=kind
        )
        assert report.batches == 5
        assert report.ops_applied > 0

    def test_full_corpus_small_scale(self):
        for case in build_corpus(scale=0.3, batches=3, batch_size=6):
            report = replay_differential(
                case.graph,
                case.script,
                store=SimilarityStore(),
                fixture=case.fixture,
                kind=case.kind,
                collect_checkpoints=True,
            )
            assert report.batches == len(case.script)
            assert len(report.checkpoints) == report.batches

    def test_mismatch_detection_is_live(self):
        # Corrupt the engine's cached state mid-replay and insist the
        # harness notices: a differential harness that cannot fail
        # verifies nothing.
        graph = erdos_renyi(30, 90, seed=14)
        engine = StreamingEngine(graph)
        params = POINTS[0]
        engine.query(params)
        script = random_edit_script(graph, seed=15, batches=1, batch_size=8)
        engine.apply(script.batches[0])
        got = engine.query(params)
        got.roles[0] = 1 - got.roles[0]  # flip one role bit
        want = GSIndex(engine.snapshot).query(params)
        assert not want.same_clustering(got)

    def test_replay_raises_on_seeded_divergence(self):
        graph = erdos_renyi(30, 90, seed=16)
        script = random_edit_script(graph, seed=17, batches=2, batch_size=6)

        class _BrokenEngine(StreamingEngine):
            def apply(self, edits):
                report = super().apply(edits)
                # Sabotage a materialized point after the repair.
                state = next(iter(self._points.values()))
                state.result.roles[0] = 1 - state.result.roles[0]
                return report

        import repro.streaming.differential as differential

        original = differential.StreamingEngine
        differential.StreamingEngine = _BrokenEngine
        try:
            with pytest.raises(DifferentialMismatch, match="diverged"):
                replay_differential(graph, script, POINTS)
        finally:
            differential.StreamingEngine = original


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    graph_seed=st.integers(min_value=0, max_value=10_000),
    script_seed=st.integers(min_value=0, max_value=10_000),
    kind=st.sampled_from(["insert", "delete", "mixed"]),
    batch_size=st.integers(min_value=1, max_value=12),
)
def test_property_random_scripts_stay_bit_identical(
    graph_seed, script_seed, kind, batch_size
):
    """Seeded, shrinkable: any generated script must replay bit-identically.

    On failure hypothesis shrinks ``batch_size`` and the seeds, which in
    turn shrinks the script (the generator is deterministic per seed).
    """
    graph = erdos_renyi(18, 40, seed=graph_seed)
    script = random_edit_script(
        graph, kind=kind, seed=script_seed, batches=3, batch_size=batch_size
    )
    replay_differential(
        graph, script, (ScanParams(0.5, 2),), store=SimilarityStore()
    )


# ---------------------------------------------------------------------------
# Engine: store invalidation exactness, idempotence, counters
# ---------------------------------------------------------------------------


class TestEngineStore:
    def _engine(self, seed=20, n=40, m=120, **kwargs):
        graph = erdos_renyi(n, m, seed=seed)
        store = SimilarityStore()
        return StreamingEngine(graph, store=store, **kwargs), store

    def test_untouched_arcs_survive_with_identical_values(self):
        engine, store = self._engine()
        old_snapshot = engine.snapshot
        old_entry = store.peek(engine.fingerprint)
        old_overlap = old_entry.overlap.copy()
        assert old_entry.covered == old_snapshot.num_arcs

        report = engine.apply([("+", 0, 39)])
        assert report.effective == 1
        new_entry = store.peek(engine.fingerprint)
        assert new_entry is not None
        assert report.overlaps_carried > 0

        new_snapshot = engine.snapshot
        checked = 0
        for u in range(new_snapshot.num_vertices):
            if u in (0, 39):
                continue
            for v in map(int, new_snapshot.neighbors(u)):
                if v in (0, 39):
                    continue
                arc_new = new_snapshot.edge_offset(u, v)
                arc_old = old_snapshot.edge_offset(u, v)
                assert new_entry.coverage[arc_new]
                assert new_entry.overlap[arc_new] == old_overlap[arc_old]
                checked += 1
        assert checked > 0

    def test_touched_arcs_miss_without_frontier_recording(self):
        engine, store = self._engine(record_frontier=False)
        report = engine.apply([("+", 0, 39)])
        assert report.effective == 1
        entry = store.peek(engine.fingerprint)
        snapshot = engine.snapshot
        for endpoint in (0, 39):
            for v in map(int, snapshot.neighbors(endpoint)):
                assert not entry.coverage[
                    snapshot.edge_offset(endpoint, v)
                ]
                assert not entry.coverage[
                    snapshot.edge_offset(v, endpoint)
                ]

    def test_frontier_rerecorded_by_default(self):
        engine, store = self._engine()
        engine.apply([("+", 0, 39)])
        entry = store.peek(engine.fingerprint)
        snapshot = engine.snapshot
        # With frontier re-recording the entry is fully covered again,
        # and every value matches a fresh exact index.
        assert entry.covered == snapshot.num_arcs
        fresh = DynamicGSIndex(DynamicGraph.from_csr(snapshot))
        for (u, v), overlap in fresh.overlaps():
            assert entry.overlap[snapshot.edge_offset(u, v)] == overlap

    def test_old_entry_discarded(self):
        engine, store = self._engine()
        old_fingerprint = engine.fingerprint
        engine.apply([("+", 0, 39)])
        assert engine.fingerprint != old_fingerprint
        assert store.peek(old_fingerprint) is None

    def test_skipped_only_batch_keeps_fingerprint_and_entry(self):
        engine, store = self._engine()
        fingerprint = engine.fingerprint
        u, v = map(int, engine.snapshot.edge_list()[0])
        report = engine.apply([("+", u, v)])
        assert report.effective == 0 and report.skipped == 1
        assert engine.fingerprint == fingerprint
        assert store.peek(fingerprint) is not None


class TestEngineBehavior:
    def test_batch_then_inverse_restores_bit_identical_state(self):
        graph = erdos_renyi(40, 120, seed=21)
        engine = StreamingEngine(graph, store=SimilarityStore())
        params = ScanParams(0.5, 2)
        before_fp = engine.fingerprint
        before = engine.query(params)

        script = random_edit_script(
            graph, seed=22, batches=1, batch_size=10, noop_rate=0.0
        )
        batch = script.batches[0]
        engine.apply(batch)
        engine.apply(batch.inverse())

        assert engine.fingerprint == before_fp
        after = engine.query(params)
        assert before.same_clustering(after)
        assert np.array_equal(before.roles, after.roles)
        assert np.array_equal(before.core_labels, after.core_labels)

    def test_whole_script_then_inverse_script(self):
        graph = erdos_renyi(35, 100, seed=23)
        engine = StreamingEngine(graph)
        params = ScanParams(0.4, 2)
        before_fp = engine.fingerprint
        before = engine.query(params)
        script = random_edit_script(
            graph, seed=24, batches=4, batch_size=8, noop_rate=0.0
        )
        for batch in script:
            engine.apply(batch)
        for batch in script.inverse():
            engine.apply(batch)
        assert engine.fingerprint == before_fp
        assert engine.query(params).same_clustering(before)

    def test_query_memoizes_per_point(self):
        engine = StreamingEngine(erdos_renyi(25, 60, seed=25))
        a = engine.query(ScanParams(0.5, 2))
        assert engine.query(ScanParams(0.5, 2)) is a
        engine.query(ScanParams(0.5, 3))
        assert engine.num_points == 2

    def test_counters_accumulate(self):
        graph = erdos_renyi(30, 80, seed=26)
        engine = StreamingEngine(graph)
        engine.query(ScanParams(0.5, 2))
        script = random_edit_script(graph, seed=27, batches=3, batch_size=6)
        for batch in script:
            engine.apply(batch)
        stats = engine.stats()
        assert stats["batches_applied"] == 3
        assert stats["edits_applied"] > 0
        assert stats["arcs_repaired"] > 0
        assert stats["vertices_reclustered"] > 0
        assert stats["points_materialized"] == 1

    def test_accepts_dynamic_graph(self):
        dyn = DynamicGraph(5)
        dyn.insert_edge(0, 1)
        engine = StreamingEngine(dyn)
        assert engine.snapshot.num_edges == 1
        report = engine.apply({"insert": [[1, 2]], "remove": [[0, 1]]})
        assert report.inserted == 1 and report.removed == 1
        assert engine.snapshot.num_edges == 1

    def test_rejected_batch_leaves_engine_consistent(self):
        graph = erdos_renyi(20, 50, seed=28)
        engine = StreamingEngine(graph)
        params = ScanParams(0.5, 2)
        before = engine.query(params)
        fingerprint = engine.fingerprint
        with pytest.raises(IndexError):
            engine.apply([("+", 0, 19), ("+", 0, 999)])
        assert engine.fingerprint == fingerprint
        assert engine.query(params).same_clustering(before)
        assert engine.query(params).same_clustering(
            GSIndex(engine.snapshot).query(params)
        )
