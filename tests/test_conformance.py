"""Differential conformance suite for the SCAN family × the cache layer.

Every registered exact algorithm (scan, pscan, scanxp, ppscan, gsindex),
in both execution modes, with no store / a cold store / a warm store
shared across the whole parameter grid, must produce the *bit-identical*
clustering — partitions, cores, and hub/outlier labels — on seeded
Erdős–Rényi graphs, an LFR-style community graph, and a set of
pathological fixtures (stars, cliques, paths, disjoint triangles with
isolated vertices).

The cached :class:`~repro.sweep.SweepEngine` is held to the same bar,
and the supervised process backend under chaos injection must recover
bit-identically without ever committing overlaps from killed or
quarantined workers into the parent's store.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.cache import SimilarityStore
from repro.core import assert_same_clustering
from repro.graph import from_edges
from repro.graph.generators import erdos_renyi, lfr_graph
from repro.intersect import merge_count
from repro.options import BackendKind, ExecMode, ExecutionOptions
from repro.parallel import FaultPlan, PoisonTaskError
from repro.sweep import SweepEngine
from repro.types import ScanParams


def star(leaves: int):
    return from_edges([(0, i) for i in range(1, leaves + 1)])


def path(n: int):
    return from_edges([(i, i + 1) for i in range(n - 1)])


def clique(n: int):
    return from_edges([(i, j) for i in range(n) for j in range(i + 1, n)])


def triangles_plus_isolated():
    edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
    return from_edges(edges, num_vertices=8)  # 6, 7 isolated


FIXTURES = {
    "er-sparse": lambda: erdos_renyi(60, 240, seed=2),
    "er-dense": lambda: erdos_renyi(50, 450, seed=11),
    "lfr": lambda: lfr_graph(120, avg_degree=10.0, mu_mix=0.3, seed=5)[0],
    "star": lambda: star(12),
    "path": lambda: path(10),
    "clique": lambda: clique(7),
    "triangles+isolated": triangles_plus_isolated,
}

GRID = [
    ScanParams(eps, mu) for eps in (0.25, 0.5, 0.75) for mu in (2, 4)
]

#: (algorithm, exec_mode) pairs; scan and gsindex have no batched mode.
VARIANTS = [
    ("scan", ExecMode.SCALAR),
    ("pscan", ExecMode.SCALAR),
    ("pscan", ExecMode.BATCHED),
    ("scanxp", ExecMode.SCALAR),
    ("scanxp", ExecMode.BATCHED),
    ("ppscan", ExecMode.SCALAR),
    ("ppscan", ExecMode.BATCHED),
    ("gsindex", ExecMode.SCALAR),
]


def _assert_conforms(reference, ref_labels, graph, result):
    assert_same_clustering(reference, result)
    np.testing.assert_array_equal(ref_labels, result.classify(graph))


@pytest.mark.parametrize("name", sorted(FIXTURES))
def test_algorithms_conform_across_grid(name):
    graph = FIXTURES[name]()
    warm = SimilarityStore()  # shared across the whole grid
    for params in GRID:
        reference = api.cluster(graph, params, algorithm="scan")
        ref_labels = reference.classify(graph)
        for algorithm, mode in VARIANTS:
            plain = api.cluster(
                graph,
                params,
                algorithm=algorithm,
                options=ExecutionOptions(exec_mode=mode),
            )
            _assert_conforms(reference, ref_labels, graph, plain)
            cold = api.cluster(
                graph,
                params,
                algorithm=algorithm,
                options=ExecutionOptions(exec_mode=mode, cache=SimilarityStore()),
            )
            _assert_conforms(reference, ref_labels, graph, cold)
            warmed = api.cluster(
                graph,
                params,
                algorithm=algorithm,
                options=ExecutionOptions(exec_mode=mode, cache=warm),
            )
            _assert_conforms(reference, ref_labels, graph, warmed)
    # The shared store must have produced real traffic across the grid.
    assert warm.stats().hits > 0


@pytest.mark.parametrize("name", ["er-sparse", "lfr", "triangles+isolated"])
def test_sweep_engine_conforms(name):
    graph = FIXTURES[name]()
    eps_values, mu_values = [0.25, 0.5, 0.75], [2, 4]
    engine = SweepEngine(graph)
    cold = engine.run(eps_values, mu_values)
    warm = engine.run(eps_values, mu_values)
    for params in GRID:
        reference = api.cluster(graph, params, algorithm="scan")
        ref_labels = reference.classify(graph)
        for outcome in (cold, warm):
            point = outcome.point(params.eps, params.mu)
            _assert_conforms(reference, ref_labels, graph, point.result)
    assert sum(p.misses for p in warm.points) == 0


def _verify_store_exact(graph, entry):
    """Every covered overlap equals ground truth |N[u] ∩ N[v]|."""
    src = graph.arc_source()
    adj = [graph.neighbors(u) for u in range(graph.num_vertices)]
    for arc in np.flatnonzero(entry.coverage):
        u, v = int(src[arc]), int(graph.dst[arc])
        assert entry.overlap[arc] == merge_count(adj[u], adj[v]) + 2


class TestSupervisorCacheInterplay:
    """Chaos injection × the similarity store: recovery cannot corrupt it."""

    GRAPH = staticmethod(lambda: erdos_renyi(150, 900, seed=3))
    PARAMS = ScanParams(0.4, 3)

    def test_chaotic_run_with_warm_store_is_bit_identical(self):
        graph = self.GRAPH()
        store = SimilarityStore()
        reference = api.cluster(
            graph, self.PARAMS, options=ExecutionOptions(cache=store)
        )
        entry = store.entry_for(graph)
        coverage_before = entry.coverage.copy()
        overlap_before = entry.overlap.copy()

        chaotic = api.cluster(
            graph,
            self.PARAMS,
            options=ExecutionOptions(
                backend=BackendKind.PROCESS,
                workers=2,
                chaos=FaultPlan.from_seed(42, tasks=4, kills=1),
                cache=store,
            ),
        )
        assert_same_clustering(reference, chaotic)

        # Previously recorded overlaps are untouched, and whatever is
        # covered now is still ground-truth exact.
        assert np.all(entry.coverage[coverage_before])
        assert np.array_equal(
            entry.overlap[coverage_before], overlap_before[coverage_before]
        )
        _verify_store_exact(graph, entry)

    def test_quarantined_tasks_never_commit_overlaps(self):
        graph = self.GRAPH()
        store = SimilarityStore()
        options = ExecutionOptions(
            backend=BackendKind.PROCESS,
            workers=2,
            chaos=FaultPlan.poison(0),
            max_retries=3,
            cache=store,
        )
        with pytest.raises(PoisonTaskError):
            api.cluster(graph, self.PARAMS, options=options)
        # The poisoned run died in workers; the parent's store must hold
        # nothing from it (worker-side record calls are pid-guarded).
        entry = store.entry_for(graph)
        assert entry.covered == 0

        # The store remains perfectly usable after the quarantine.
        reference = api.cluster(graph, self.PARAMS)
        cached = api.cluster(
            graph, self.PARAMS, options=ExecutionOptions(cache=store)
        )
        assert_same_clustering(reference, cached)
        _verify_store_exact(graph, entry)
