"""End-to-end observability: CLI tracing, wall population, round-trips,
schedule replay."""

import json

import pytest

from repro.cli import main
from repro.core import anyscan, ppscan, pscan, scan, scanpp, scanxp
from repro.graph import write_edge_list
from repro.graph.generators import erdos_renyi
from repro.intersect import OpCounter
from repro.metrics import RunRecord, StageRecord, TaskCost
from repro.obs import Tracer, use_tracer
from repro.parallel import CPU_SERVER, ProcessBackend, trace_stage
from repro.types import ScanParams

ALGORITHMS = {
    "scan": scan,
    "pscan": pscan,
    "ppscan": ppscan,
    "scanxp": scanxp,
    "anyscan": anyscan,
    "scanpp": scanpp,
}


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.txt"
    write_edge_list(erdos_renyi(50, 200, seed=2), path)
    return str(path)


class TestCliTracing:
    @pytest.mark.parametrize("fmt", ["jsonl", "chrome", "report"])
    def test_cluster_trace_every_format(self, graph_file, tmp_path, capsys, fmt):
        out = tmp_path / f"trace.{fmt}"
        assert (
            main(
                [
                    "cluster",
                    graph_file,
                    "--eps", "0.4",
                    "--mu", "2",
                    "--trace", str(out),
                    "--trace-format", fmt,
                ]
            )
            == 0
        )
        assert f"wrote {fmt} trace to" in capsys.readouterr().out
        assert out.stat().st_size > 0

    def test_chrome_trace_is_perfetto_shaped(self, graph_file, tmp_path):
        out = tmp_path / "trace.json"
        main(["cluster", graph_file, "--trace", str(out)])
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        assert any(e["ph"] == "M" for e in events)
        span_names = {e["name"] for e in events if e["ph"] == "X"}
        assert "ppscan" in span_names
        assert "core checking" in span_names
        # Ingested record metrics ride along as the instant event.
        instant = next(e for e in events if e["ph"] == "I")
        assert any(k.startswith("record.") for k in instant["args"])

    def test_cluster_trace_with_process_backend(
        self, graph_file, tmp_path, capsys
    ):
        out = tmp_path / "trace.json"
        assert (
            main(
                [
                    "cluster",
                    graph_file,
                    "--workers", "2",
                    "--trace", str(out),
                ]
            )
            == 0
        )
        doc = json.loads(out.read_text())
        tids = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert tids <= {0, 1, 2}

    def test_sim_trace_renders_virtual_workers(
        self, graph_file, tmp_path, capsys
    ):
        out = tmp_path / "sim.json"
        assert (
            main(
                [
                    "cluster",
                    graph_file,
                    "--sim-trace", str(out),
                    "--sim-threads", "4",
                ]
            )
            == 0
        )
        assert "simulated-schedule" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        thread_names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["name"] == "thread_name"
        }
        assert any(name.startswith("virtual worker") for name in thread_names)

    def test_compare_traces_and_reports_stage_wall(
        self, graph_file, tmp_path, capsys
    ):
        out = tmp_path / "compare.jsonl"
        assert (
            main(
                [
                    "compare",
                    graph_file,
                    "--eps", "0.4",
                    "--mu", "2",
                    "--trace", str(out),
                    "--trace-format", "jsonl",
                ]
            )
            == 0
        )
        stdout = capsys.readouterr().out
        assert "stage wall" in stdout
        records = [
            json.loads(line) for line in out.read_text().splitlines()
        ]
        metric_names = {
            r["name"] for r in records if r["type"] == "metric"
        }
        # One namespace per algorithm row in the registry.
        assert any(name.startswith("ppSCAN.") for name in metric_names)
        assert any(name.startswith("pSCAN.") for name in metric_names)


class TestStageWallPopulation:
    """Satellite: every algorithm fills per-stage walls (Figure-1 ready)."""

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_stage_walls_fill_the_run(self, name):
        graph = erdos_renyi(80, 320, seed=4)
        result = ALGORITHMS[name](graph, ScanParams(eps=0.4, mu=3))
        record = result.record
        assert record.wall_seconds > 0.0
        assert all(s.wall_seconds >= 0.0 for s in record.stages)
        assert record.stage_wall_seconds > 0.0
        # Stage walls decompose the measured run wall, never exceed it.
        assert record.stage_wall_seconds <= record.wall_seconds * 1.05


class TestApportionWall:
    def test_fills_unmeasured_by_cost_share(self):
        record = RunRecord(
            "x",
            stages=[
                StageRecord("a", [TaskCost(arcs=30)]),
                StageRecord("b", [TaskCost(arcs=10)]),
            ],
            wall_seconds=8.0,
        )
        record.apportion_wall()
        assert record.stage("a").wall_seconds == pytest.approx(6.0)
        assert record.stage("b").wall_seconds == pytest.approx(2.0)

    def test_measured_stages_keep_their_wall(self):
        record = RunRecord(
            "x",
            stages=[
                StageRecord("a", [TaskCost(arcs=1)], wall_seconds=3.0),
                StageRecord("b", [TaskCost(arcs=1)]),
            ],
            wall_seconds=5.0,
        )
        record.apportion_wall()
        assert record.stage("a").wall_seconds == pytest.approx(3.0)
        assert record.stage("b").wall_seconds == pytest.approx(2.0)

    def test_zero_cost_stages_split_evenly(self):
        record = RunRecord(
            "x",
            stages=[StageRecord("a"), StageRecord("b")],
            wall_seconds=4.0,
        )
        record.apportion_wall()
        assert record.stage("a").wall_seconds == pytest.approx(2.0)


class TestRoundTrips:
    """Satellite: as_dict/from_dict persistence alongside traces."""

    def test_task_cost_round_trip(self):
        cost = TaskCost(scalar_cmp=5, vector_ops=2, arcs=9, compsims=4)
        clone = TaskCost.from_dict(json.loads(json.dumps(cost.as_dict())))
        assert clone == cost

    def test_task_cost_rejects_unknown_keys(self):
        with pytest.raises(TypeError):
            TaskCost.from_dict({"scalar_cmp": 1, "nonsense": 2})

    def test_stage_record_round_trip(self):
        stage = StageRecord(
            "core checking",
            [TaskCost(arcs=3), TaskCost(atomics=1)],
            wall_seconds=0.5,
        )
        clone = StageRecord.from_dict(json.loads(json.dumps(stage.as_dict())))
        assert clone == stage

    def test_run_record_round_trip(self):
        record = RunRecord(
            "ppSCAN",
            stages=[
                StageRecord("a", [TaskCost(compsims=7)], wall_seconds=0.1),
                StageRecord("b", wall_seconds=0.2),
            ],
            wall_seconds=0.4,
        )
        clone = RunRecord.from_dict(json.loads(json.dumps(record.as_dict())))
        assert clone == record
        assert clone.total().compsims == 7
        assert clone.stage_wall_seconds == pytest.approx(0.3)

    def test_real_run_record_round_trips(self):
        graph = erdos_renyi(60, 240, seed=6)
        record = ppscan(graph, ScanParams(eps=0.4, mu=3)).record
        clone = RunRecord.from_dict(json.loads(json.dumps(record.as_dict())))
        assert clone == record

    def test_op_counter_round_trip(self):
        counter = OpCounter()
        counter.invocations = 3
        counter.scalar_cmp = 11
        counter.early_exits = 2
        assert OpCounter.from_dict(counter.as_dict()) == counter

    def test_op_counter_rejects_unknown_keys(self):
        with pytest.raises(KeyError):
            OpCounter.from_dict({"scalar_cmp": 1, "nonsense": 2})


class TestScheduleReplay:
    """Satellite: ScheduleTrace exposes per-worker timelines + imbalance."""

    @staticmethod
    def _trace(costs, workers):
        stage = StageRecord("s", [TaskCost(scalar_cmp=c) for c in costs])
        return trace_stage(stage, CPU_SERVER, workers)

    def test_worker_intervals_replay_the_loads(self):
        trace = self._trace([10, 20, 30, 5, 5], 2)
        intervals = trace.worker_intervals()
        assert len(intervals) == 5
        clocks = [0.0] * trace.workers
        for task, worker, begin, end in intervals:
            # Back-to-back per worker: each task starts at its worker's clock.
            assert begin == pytest.approx(clocks[worker])
            assert end >= begin
            clocks[worker] = end
        assert clocks == pytest.approx(list(trace.loads))
        assert max(clocks) == pytest.approx(trace.makespan)

    def test_imbalance_contributions_sum_to_zero(self):
        trace = self._trace([100, 1, 1, 1], 2)
        contributions = trace.imbalance_contributions()
        assert len(contributions) == trace.workers
        assert sum(contributions) == pytest.approx(0.0)
        assert max(contributions) > 0.0

    def test_report_shows_contributions(self):
        text = self._trace([5, 6, 7], 2).report()
        assert "vs ideal" in text
        assert "schedule trace" in text

    def test_empty_trace_contributions(self):
        trace = self._trace([], 2)
        assert trace.imbalance_contributions() == [0.0, 0.0]
        assert trace.worker_intervals() == []


class TestProcessBackendTracing:
    def test_worker_task_spans_land_on_worker_lanes(self):
        graph = erdos_renyi(120, 600, seed=8)
        tracer = Tracer()
        with use_tracer(tracer):
            plain = ppscan(graph, ScanParams(eps=0.4, mu=3))
            backend = ProcessBackend(workers=2)
            traced = ppscan(
                graph,
                ScanParams(eps=0.4, mu=3),
                backend=backend,
                task_threshold=50,
            )
        assert traced.same_clustering(plain)
        lanes = tracer.lanes()
        assert lanes[0] == 0
        assert set(lanes) <= {0, 1, 2}
        worker_spans = [
            s for s in tracer.spans if s.lane > 0 and s.name == "task"
        ]
        if len(lanes) > 1:  # pool actually forked (multi-task phases)
            assert worker_spans
            for span in worker_spans:
                assert "beg" in span.attrs and "stop" in span.attrs
