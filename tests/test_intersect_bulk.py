"""Bulk NumPy common-neighbor kernel vs the scalar oracle."""

import numpy as np

from repro.graph import complete_graph, from_edges
from repro.graph.generators import erdos_renyi
from repro.intersect import BulkIntersector, common_neighbor_counts, merge_count


def ref_counts(graph, edges):
    return np.array(
        [
            merge_count(graph.neighbors(u), graph.neighbors(v))
            for u, v in edges
        ]
    )


class TestBulkIntersector:
    def test_counts_from_single_source(self):
        g = complete_graph(6)
        inter = BulkIntersector(g)
        counts = inter.counts_from(0, np.array([1, 2, 3]))
        # In K6, any two vertices share the other 4 vertices.
        assert counts.tolist() == [4, 4, 4]

    def test_scratch_reusable(self):
        g = complete_graph(5)
        inter = BulkIntersector(g)
        first = inter.counts_from(0, np.array([1]))
        second = inter.counts_from(2, np.array([3]))
        assert first.tolist() == [3]
        assert second.tolist() == [3]

    def test_matches_merge_on_random_graph(self):
        g = erdos_renyi(80, 400, seed=2)
        edges = g.edge_list()
        assert np.array_equal(common_neighbor_counts(g, edges), ref_counts(g, edges))

    def test_empty_edges(self):
        g = complete_graph(3)
        out = common_neighbor_counts(g, np.empty((0, 2), dtype=np.int64))
        assert out.size == 0

    def test_unsorted_edge_batch(self):
        g = erdos_renyi(40, 150, seed=5)
        edges = g.edge_list()[::-1].copy()  # reverse order, mixed sources
        assert np.array_equal(
            common_neighbor_counts(g, edges), ref_counts(g, edges)
        )

    def test_triangle_counts(self):
        g = from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        edges = np.array([[0, 1], [2, 3]])
        counts = common_neighbor_counts(g, edges)
        assert counts.tolist() == [1, 0]


class TestCountsFromVsLoopOracle:
    """The gathered/segmented ``counts_from`` against its retained
    per-candidate loop reference."""

    def test_random_graphs(self):
        for seed in range(4):
            g = erdos_renyi(60, 260, seed=seed)
            inter = BulkIntersector(g)
            for u in range(g.num_vertices):
                cands = g.neighbors(u)
                assert np.array_equal(
                    inter.counts_from(u, cands),
                    inter.counts_from_loop(u, cands),
                )

    def test_arbitrary_candidates(self):
        # Candidates need not be neighbors of u — including isolated and
        # repeated vertices.
        g = from_edges([(0, 1), (1, 2), (0, 2), (2, 3)], num_vertices=6)
        inter = BulkIntersector(g)
        cands = np.array([4, 3, 3, 0, 5])
        assert np.array_equal(
            inter.counts_from(1, cands), inter.counts_from_loop(1, cands)
        )

    def test_empty_candidates(self):
        g = complete_graph(4)
        inter = BulkIntersector(g)
        empty = np.empty(0, dtype=np.int64)
        assert inter.counts_from(0, empty).size == 0
        assert inter.counts_from_loop(0, empty).size == 0
