"""Bulk NumPy common-neighbor kernel vs the scalar oracle."""

import numpy as np

from repro.graph import complete_graph, from_edges
from repro.graph.generators import erdos_renyi
from repro.intersect import BulkIntersector, common_neighbor_counts, merge_count


def ref_counts(graph, edges):
    return np.array(
        [
            merge_count(graph.neighbors(u), graph.neighbors(v))
            for u, v in edges
        ]
    )


class TestBulkIntersector:
    def test_counts_from_single_source(self):
        g = complete_graph(6)
        inter = BulkIntersector(g)
        counts = inter.counts_from(0, np.array([1, 2, 3]))
        # In K6, any two vertices share the other 4 vertices.
        assert counts.tolist() == [4, 4, 4]

    def test_scratch_reusable(self):
        g = complete_graph(5)
        inter = BulkIntersector(g)
        first = inter.counts_from(0, np.array([1]))
        second = inter.counts_from(2, np.array([3]))
        assert first.tolist() == [3]
        assert second.tolist() == [3]

    def test_matches_merge_on_random_graph(self):
        g = erdos_renyi(80, 400, seed=2)
        edges = g.edge_list()
        assert np.array_equal(common_neighbor_counts(g, edges), ref_counts(g, edges))

    def test_empty_edges(self):
        g = complete_graph(3)
        out = common_neighbor_counts(g, np.empty((0, 2), dtype=np.int64))
        assert out.size == 0

    def test_unsorted_edge_batch(self):
        g = erdos_renyi(40, 150, seed=5)
        edges = g.edge_list()[::-1].copy()  # reverse order, mixed sources
        assert np.array_equal(
            common_neighbor_counts(g, edges), ref_counts(g, edges)
        )

    def test_triangle_counts(self):
        g = from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        edges = np.array([[0, 1], [2, 3]])
        counts = common_neighbor_counts(g, edges)
        assert counts.tolist() == [1, 0]
