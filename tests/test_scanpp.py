"""SCAN++: exactness, pivot/DTAR structure, cost profile."""

import pytest

from repro.core import brute_force_scan, ppscan, pscan, scanpp
from repro.graph import complete_graph, path_graph
from repro.graph.generators import chung_lu, erdos_renyi, powerlaw_weights
from repro.types import ScanParams


@pytest.fixture(scope="module")
def graph():
    return chung_lu(powerlaw_weights(200, 2.3), 1100, seed=17)


class TestExactness:
    @pytest.mark.parametrize("eps", [0.2, 0.5, 0.8])
    @pytest.mark.parametrize("mu", [1, 2, 5])
    def test_vs_brute_force(self, eps, mu):
        g = erdos_renyi(50, 200, seed=23)
        params = ScanParams(eps, mu)
        assert scanpp(g, params).same_clustering(brute_force_scan(g, params))

    def test_vs_ppscan_on_powerlaw(self, graph):
        params = ScanParams(0.4, 3)
        assert scanpp(graph, params).same_clustering(ppscan(graph, params))

    def test_complete_graph(self):
        g = complete_graph(10)
        result = scanpp(g, ScanParams(0.5, 3))
        assert result.num_clusters == 1

    def test_path_graph(self):
        result = scanpp(path_graph(8), ScanParams(0.9, 2))
        assert result.num_clusters == 0


class TestStructure:
    def test_pivots_form_dominating_set(self, graph):
        """Every vertex is a pivot or adjacent to one."""
        result = scanpp(graph, ScanParams(0.4, 3))
        record = result.record
        assert 0 < record.num_pivots <= graph.num_vertices
        # A dominating set cannot be smaller than n / (max_d + 1).
        assert record.num_pivots >= graph.num_vertices / (
            graph.max_degree() + 1
        )

    def test_dtar_sizes_recorded(self, graph):
        record = scanpp(graph, ScanParams(0.4, 3)).record
        assert len(record.dtar_sizes) == record.num_pivots
        assert all(s >= 0 for s in record.dtar_sizes)

    def test_stage_names(self, graph):
        record = scanpp(graph, ScanParams(0.4, 3)).record
        assert [s.name for s in record.stages] == [
            "pivot expansion",
            "consolidation",
            "clustering",
        ]

    def test_each_edge_computed_at_most_once(self, graph):
        record = scanpp(graph, ScanParams(0.3, 3)).record
        assert record.compsim_invocations <= graph.num_edges


class TestCostProfile:
    def test_dtar_maintenance_dominates(self, graph):
        """The paper's verdict: DTAR allocations dwarf the intersection
        savings — SCAN++'s pivot stage carries heavy alloc counts."""
        record = scanpp(graph, ScanParams(0.4, 3)).record
        pivot_stage = record.stage("pivot expansion").total()
        assert pivot_stage.allocs > graph.num_edges  # two-hop blowup

    def test_slower_than_pscan_on_knl_model(self, graph):
        from repro.parallel import KNL_SERVER

        params = ScanParams(0.4, 3)
        sp = KNL_SERVER.run_seconds(scanpp(graph, params).record, 1)
        ps = KNL_SERVER.run_seconds(pscan(graph, params).record, 1)
        assert sp > ps
