"""Degree-based dynamic task scheduling (Algorithm 5)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.parallel import degree_based_tasks, uniform_tasks


class TestDegreeBasedTasks:
    def test_covers_all_vertices_contiguously(self):
        degrees = [5, 1, 9, 3, 7, 2]
        tasks = degree_based_tasks(degrees, None, threshold=8)
        assert tasks[0][0] == 0
        assert tasks[-1][1] == len(degrees)
        for (_, e1), (b2, _) in zip(tasks, tasks[1:]):
            assert e1 == b2

    def test_threshold_cuts(self):
        # Accumulate 5, 6 -> >4 cut; then 9 -> cut; remainder.
        tasks = degree_based_tasks([5, 1, 9, 3], None, threshold=4)
        assert tasks == [(0, 1), (1, 3), (3, 4)]

    def test_skips_vertices_without_work(self):
        degrees = [100, 100, 100, 100]
        needs = [False, True, False, False]
        tasks = degree_based_tasks(degrees, needs, threshold=50)
        # Only vertex 1 contributes degree: one cut after it + remainder.
        assert tasks == [(0, 2), (2, 4)]

    def test_no_work_single_remainder_task(self):
        tasks = degree_based_tasks([5, 5, 5], [False] * 3, threshold=1)
        assert tasks == [(0, 3)]

    def test_empty_graph(self):
        assert degree_based_tasks([], None, threshold=10) == []

    def test_huge_threshold_single_task(self):
        tasks = degree_based_tasks([3, 3, 3], None, threshold=10**9)
        assert tasks == [(0, 3)]

    def test_threshold_one_fine_tasks(self):
        tasks = degree_based_tasks([2, 2, 2], None, threshold=1)
        assert tasks == [(0, 1), (1, 2), (2, 3)]

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            degree_based_tasks([1], None, threshold=0)

    @given(
        st.lists(st.integers(min_value=0, max_value=50), max_size=60),
        st.integers(min_value=1, max_value=100),
    )
    def test_partition_property(self, degrees, threshold):
        tasks = degree_based_tasks(degrees, None, threshold)
        covered = [v for beg, end in tasks for v in range(beg, end)]
        assert covered == list(range(len(degrees)))

    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=100),
    )
    def test_interior_tasks_exceed_threshold(self, degrees, threshold):
        """Every task except the remainder carries > threshold degree sum."""
        tasks = degree_based_tasks(degrees, None, threshold)
        for beg, end in tasks[:-1]:
            assert sum(degrees[beg:end]) > threshold


class TestNumpyDispatch:
    """The vectorized ndarray cutting path must reproduce the scalar
    greedy walk exactly (same cuts, not merely a valid partition)."""

    @given(
        st.lists(st.integers(min_value=0, max_value=50), max_size=60),
        st.integers(min_value=1, max_value=100),
    )
    def test_array_degrees_match_list_degrees(self, degrees, threshold):
        expected = degree_based_tasks(degrees, None, threshold)
        got = degree_based_tasks(
            np.array(degrees, dtype=np.int64), None, threshold
        )
        assert got == expected

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.booleans(),
            ),
            max_size=60,
        ),
        st.integers(min_value=1, max_value=100),
    )
    def test_needs_mask_matches(self, rows, threshold):
        degrees = [d for d, _ in rows]
        needs = [w for _, w in rows]
        expected = degree_based_tasks(degrees, needs, threshold)
        got = degree_based_tasks(
            np.array(degrees, dtype=np.int64),
            np.array(needs, dtype=bool),
            threshold,
        )
        assert got == expected

    def test_array_bad_threshold(self):
        with pytest.raises(ValueError):
            degree_based_tasks(np.array([1]), None, threshold=0)


class TestUniformTasks:
    def test_chunks(self):
        assert uniform_tasks(7, 3) == [(0, 3), (3, 6), (6, 7)]

    def test_exact_division(self):
        assert uniform_tasks(6, 3) == [(0, 3), (3, 6)]

    def test_empty(self):
        assert uniform_tasks(0, 4) == []

    def test_bad_chunk(self):
        with pytest.raises(ValueError):
            uniform_tasks(5, 0)
