"""Machine-model pricing: throughput curve, roofline, presets."""

import pytest

from repro.metrics import RunRecord, StageRecord, TaskCost
from repro.parallel import CPU_SERVER, KNL_SERVER


def make_record(num_tasks=32, scalar=10_000, arcs=2_000, atomics=0):
    tasks = [
        TaskCost(scalar_cmp=scalar, arcs=arcs, atomics=atomics)
        for _ in range(num_tasks)
    ]
    return RunRecord("test", [StageRecord("stage", tasks)])


class TestThroughput:
    @pytest.mark.parametrize("machine", [CPU_SERVER, KNL_SERVER])
    def test_linear_up_to_cores(self, machine):
        cores = machine.physical_cores
        assert machine.throughput(1) == 1
        assert machine.throughput(cores) == cores

    @pytest.mark.parametrize("machine", [CPU_SERVER, KNL_SERVER])
    def test_smt_partial_gain(self, machine):
        cores = machine.physical_cores
        t_max = machine.max_threads()
        assert cores < machine.throughput(t_max) < t_max

    @pytest.mark.parametrize("machine", [CPU_SERVER, KNL_SERVER])
    def test_saturates_past_max_threads(self, machine):
        t_max = machine.max_threads()
        assert machine.throughput(t_max) == machine.throughput(t_max * 4)

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            KNL_SERVER.throughput(0)

    def test_preset_identities(self):
        assert CPU_SERVER.max_threads() == 40
        assert KNL_SERVER.max_threads() == 256
        assert CPU_SERVER.lanes == 8
        assert KNL_SERVER.lanes == 16


class TestPricing:
    def test_task_cycles_positive(self):
        cost = TaskCost(scalar_cmp=100, vector_ops=10, arcs=50)
        assert KNL_SERVER.task_cycles(cost) > 0

    def test_atomics_pay_contention(self):
        cost = TaskCost(atomics=100)
        assert KNL_SERVER.task_cycles(cost, threads=256) > (
            KNL_SERVER.task_cycles(cost, threads=1)
        )

    def test_pure_compute_contention_free(self):
        cost = TaskCost(scalar_cmp=100)
        assert KNL_SERVER.task_cycles(cost, 256) == KNL_SERVER.task_cycles(cost, 1)

    def test_run_seconds_decreases_with_threads(self):
        record = make_record()
        times = [KNL_SERVER.run_seconds(record, t) for t in (1, 4, 16, 64)]
        assert times == sorted(times, reverse=True)

    def test_speedup_bounded_by_throughput(self):
        record = make_record(num_tasks=512)
        t1 = KNL_SERVER.run_seconds(record, 1)
        t256 = KNL_SERVER.run_seconds(record, 256)
        assert t1 / t256 <= KNL_SERVER.throughput(256) + 1e-6

    def test_empty_stage_free(self):
        record = RunRecord("t", [StageRecord("empty", [])])
        assert KNL_SERVER.run_seconds(record, 8) == 0.0

    def test_stage_breakdown_keys(self):
        record = RunRecord(
            "t", [StageRecord("a", [TaskCost(arcs=1)]), StageRecord("b", [])]
        )
        breakdown = CPU_SERVER.stage_breakdown(record, 2)
        assert set(breakdown) == {"a", "b"}

    def test_memory_bound_stage_flat_in_threads(self):
        # Arc-heavy, compute-light tasks hit the bandwidth roof.
        tasks = [TaskCost(arcs=10_000_000) for _ in range(64)]
        record = RunRecord("t", [StageRecord("mem", tasks)])
        t64 = CPU_SERVER.run_seconds(record, 64)
        t32 = CPU_SERVER.run_seconds(record, 32)
        assert t64 == pytest.approx(t32, rel=0.25)

    def test_vector_ops_cheaper_than_scalar(self):
        # A vector block op is always cheaper than the branchy scalar
        # comparisons it replaces; KNL's width advantage comes from the
        # wider lanes (fewer block ops for the same walk), not the per-op
        # price.
        vec = TaskCost(vector_ops=1000)
        scal = TaskCost(scalar_cmp=1000)
        for machine in (CPU_SERVER, KNL_SERVER):
            assert machine.task_cycles(vec) < machine.task_cycles(scal)
        assert KNL_SERVER.lanes == 2 * CPU_SERVER.lanes

    def test_allocs_expensive(self):
        assert KNL_SERVER.task_cycles(TaskCost(allocs=10)) > (
            KNL_SERVER.task_cycles(TaskCost(arcs=10))
        )
