"""The paper's stated theorems and lemmas, checked as executable facts."""

import numpy as np
import pytest

from repro.core import brute_force_scan, ppscan, pscan, scan
from repro.graph import complete_graph, from_edges
from repro.graph.generators import chung_lu, erdos_renyi, powerlaw_weights
from repro.similarity.threshold import min_cn_threshold
from repro.types import CORE, SIM, ScanParams
from repro.unionfind import UnionFind


@pytest.fixture(scope="module")
def graph():
    return chung_lu(powerlaw_weights(200, 2.3), 1200, seed=6)


class TestTheorem34:
    """SCAN's exhaustive similarity workload is exactly 2 * sum(d(v)^2)."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_workload_identity(self, seed):
        g = erdos_renyi(50, 200, seed=seed)
        result = scan(g, ScanParams(0.5, 2))
        sim_stage = result.record.stage("similarity evaluation").total()
        expected = 2 * int(np.sum(g.degrees.astype(np.int64) ** 2))
        assert sim_stage.scalar_cmp == expected

    def test_workload_independent_of_eps(self):
        g = erdos_renyi(40, 160, seed=3)
        costs = {
            eps: scan(g, ScanParams(eps, 2)).record.total().scalar_cmp
            for eps in (0.2, 0.5, 0.9)
        }
        assert len(set(costs.values())) == 1


class TestTheorem41:
    """ppSCAN invokes CompSim at most once per undirected edge."""

    @pytest.mark.parametrize("eps", [0.2, 0.5, 0.8])
    @pytest.mark.parametrize("prune", [True, False])
    def test_at_most_one_invocation_per_edge(self, graph, eps, prune):
        result = ppscan(graph, ScanParams(eps, 5), prune_phase=prune)
        assert result.record.compsim_invocations <= graph.num_edges

    def test_pscan_also_at_most_once(self, graph):
        result = pscan(graph, ScanParams(0.3, 5))
        assert result.record.compsim_invocations <= graph.num_edges


class TestTheorem42:
    """Roles are complete and correct after checking + consolidating."""

    def test_roles_complete_and_match_definition(self, graph):
        params = ScanParams(0.4, 4)
        result = ppscan(graph, params)
        from repro.types import ROLE_UNKNOWN

        assert not np.any(result.roles == ROLE_UNKNOWN)
        reference = brute_force_scan(graph, params)
        assert np.array_equal(result.roles, reference.roles)


class TestTheorem44:
    """Each similar edge is used at most once for core clustering."""

    def test_union_attempts_bounded_by_similar_core_edges(self, graph):
        params = ScanParams(0.3, 3)
        result = ppscan(graph, params)
        record = result.record
        unions = sum(
            t.atomics
            for name in ("core clustering (no compsim)", "core clustering (compsim)")
            for t in record.stage(name).tasks
        )
        # Unions cannot exceed (cores - clusters) successful merges... the
        # CAS count here tallies attempted unions on not-yet-joined roots,
        # bounded by similar core-core edges and by n - 1 per component.
        assert unions < graph.num_vertices + graph.num_edges


class TestLemma35:
    """Clusters of cores are disjoint (each core in exactly one cluster)."""

    @pytest.mark.parametrize("eps", [0.2, 0.5, 0.7])
    def test_core_labels_unique(self, graph, eps):
        result = ppscan(graph, ScanParams(eps, 4))
        cores = np.flatnonzero(result.roles == CORE)
        assert np.all(result.core_labels[cores] >= 0)
        non_cores = np.flatnonzero(result.roles != CORE)
        assert np.all(result.core_labels[non_cores] == -1)
        # Membership of a core is exactly its one label.
        member = result.membership()
        for v in cores:
            assert member[int(v)] == {int(result.core_labels[v])}


class TestClusterDefinition:
    """Definition 2.9: connectivity and maximality of output clusters."""

    def _similar(self, g, params, u, v):
        common = len(
            set(g.neighbors(u).tolist()) & set(g.neighbors(v).tolist())
        )
        return common + 2 >= min_cn_threshold(
            params.eps_fraction, g.degree(u), g.degree(v)
        )

    @pytest.mark.parametrize("eps,mu", [(0.3, 3), (0.5, 2)])
    def test_connectivity_and_maximality(self, eps, mu):
        g = erdos_renyi(60, 280, seed=11)
        params = ScanParams(eps, mu)
        result = ppscan(g, params)

        # Cores connected within a cluster via similar core-core edges.
        for cid in result.cluster_ids:
            cores = [
                int(v)
                for v in np.flatnonzero(
                    (result.core_labels == cid) & (result.roles == CORE)
                )
            ]
            uf = UnionFind(g.num_vertices)
            core_set = set(cores)
            for u in cores:
                for v in g.neighbors(u):
                    v = int(v)
                    if v in core_set and self._similar(g, params, u, v):
                        uf.union(u, v)
            roots = {uf.find(u) for u in cores}
            assert len(roots) == 1, f"cluster {cid} cores not connected"

        # Maximality: a similar core-core edge never crosses clusters.
        for u in np.flatnonzero(result.roles == CORE):
            u = int(u)
            for v in g.neighbors(u):
                v = int(v)
                if result.roles[v] == CORE and self._similar(g, params, u, v):
                    assert result.core_labels[u] == result.core_labels[v]

    def test_noncore_membership_is_dsr(self):
        # A non-core is in cluster C iff some core of C is similar to it.
        g = erdos_renyi(60, 280, seed=12)
        params = ScanParams(0.4, 3)
        result = ppscan(g, params)
        member = result.membership()
        for v in range(g.num_vertices):
            if result.roles[v] == CORE:
                continue
            expected = set()
            for u in g.neighbors(v):
                u = int(u)
                if result.roles[u] == CORE and self._similar(g, params, u, v):
                    expected.add(int(result.core_labels[u]))
            assert member[v] == expected


class TestSimilarityReuse:
    """§3.2.1: sim[e(u,v)] and sim[e(v,u)] always agree."""

    def test_symmetric_sim_after_ppscan_on_context(self):
        # Drive ppSCAN's phases through a small graph and verify via the
        # result: recompute each edge both directions with the engine.
        g = complete_graph(9)
        params = ScanParams(0.6, 3)
        from repro.similarity import SimilarityEngine

        engine = SimilarityEngine(g, params)
        for u, v in g.edge_list():
            assert engine.compsim(int(u), int(v)) == engine.compsim(
                int(v), int(u)
            )
