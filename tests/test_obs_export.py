"""Trace exporters: Chrome trace events, JSONL, text report."""

import json

import pytest

from repro.core.ppscan import ppscan
from repro.graph.generators import erdos_renyi
from repro.metrics import StageRecord, TaskCost
from repro.obs import (
    TRACE_FORMATS,
    Tracer,
    chrome_trace,
    jsonl_lines,
    openmetrics_lines,
    run_report,
    schedule_chrome_events,
    use_tracer,
    write_chrome_trace,
    write_jsonl,
    write_openmetrics,
    write_trace,
)
from repro.parallel import CPU_SERVER, trace_stage
from repro.types import ScanParams


def synthetic_tracer() -> Tracer:
    """A tracer with fixed, epoch-relative spans (deterministic values)."""
    tracer = Tracer()
    tracer.epoch = 0.0
    tracer.add_span("run", 0.0, 10.0, lane=0, depth=0, eps=0.5)
    tracer.add_span("phase", 1.0, 4.0, lane=0, depth=1, tasks=2)
    tracer.add_span("task", 1.0, 2.0, lane=1, depth=1, beg=0, stop=8)
    tracer.add_span("task", 2.0, 4.0, lane=2, depth=1, beg=8, stop=16)
    tracer.count("arcs", 7)
    tracer.gauge("wall", 10.0)
    return tracer


def traced_run(seed: int = 9) -> Tracer:
    graph = erdos_renyi(60, 240, seed=seed)
    tracer = Tracer()
    with use_tracer(tracer):
        ppscan(graph, ScanParams(eps=0.4, mu=3))
    return tracer


class TestChromeTrace:
    def test_document_structure(self):
        doc = chrome_trace(synthetic_tracer())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        assert events[0]["ph"] == "M"
        assert events[0]["args"]["name"] == "repro-scan"
        metadata = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "I"]
        # process_name + one thread_name per lane
        assert len(metadata) == 1 + 3
        assert len(spans) == 4
        assert len(instants) == 1  # the metrics snapshot

    def test_one_thread_per_lane_named(self):
        doc = chrome_trace(synthetic_tracer())
        names = {
            e["tid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["name"] == "thread_name"
        }
        assert names == {0: "master", 1: "worker 1", 2: "worker 2"}

    def test_span_timestamps_relative_to_epoch_in_us(self):
        doc = chrome_trace(synthetic_tracer())
        phase = next(
            e for e in doc["traceEvents"] if e.get("name") == "phase"
        )
        assert phase["ts"] == pytest.approx(1.0e6)
        assert phase["dur"] == pytest.approx(3.0e6)
        assert phase["args"] == {"tasks": 2}

    def test_metrics_event_carries_registry(self):
        doc = chrome_trace(synthetic_tracer())
        instant = next(e for e in doc["traceEvents"] if e["ph"] == "I")
        assert instant["args"] == {"arcs": 7, "wall": 10.0}

    def test_json_serializable(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, synthetic_tracer())
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)

    def test_write_accepts_prebuilt_document(self, tmp_path):
        path = tmp_path / "doc.json"
        write_chrome_trace(path, {"traceEvents": []})
        assert json.loads(path.read_text()) == {"traceEvents": []}

    def test_real_run_covers_every_ppscan_phase(self):
        from repro.core import PPSCAN_STAGES

        doc = chrome_trace(traced_run())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        for stage in PPSCAN_STAGES:
            assert stage in names, f"missing span for phase {stage!r}"


class TestDeterminism:
    """Exports are structurally identical for a fixed workload."""

    @staticmethod
    def _strip_chrome(doc):
        out = []
        for event in doc["traceEvents"]:
            event = dict(event)
            event.pop("ts", None)
            event.pop("dur", None)
            args = event.get("args")
            if isinstance(args, dict):
                event["args"] = {
                    k: v
                    for k, v in args.items()
                    if "wall" not in k and "seconds" not in k
                }
            out.append(event)
        return out

    def test_chrome_structure_stable_across_runs(self):
        docs = [chrome_trace(traced_run(seed=21)) for _ in range(2)]
        assert self._strip_chrome(docs[0]) == self._strip_chrome(docs[1])

    def test_jsonl_structure_stable_across_runs(self):
        def strip(tracer):
            records = [json.loads(line) for line in jsonl_lines(tracer)]
            for record in records:
                record.pop("begin_us", None)
                record.pop("dur_us", None)
                if record["type"] == "metric" and (
                    "wall" in record["name"] or "seconds" in record["name"]
                ):
                    record["value"] = None
            return records

        assert strip(traced_run(seed=22)) == strip(traced_run(seed=22))


class TestJsonl:
    def test_meta_then_spans_then_metrics(self):
        lines = [json.loads(line) for line in jsonl_lines(synthetic_tracer())]
        assert lines[0] == {"type": "meta", "lanes": [0, 1, 2], "spans": 4}
        kinds = [record["type"] for record in lines]
        assert kinds == ["meta"] + ["span"] * 4 + ["metric"] * 2
        task = next(r for r in lines if r.get("name") == "task")
        assert task["attrs"] == {"beg": 0, "stop": 8}

    def test_write_jsonl_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(path, synthetic_tracer())
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert records[0]["type"] == "meta"
        assert len(records) == 1 + 4 + 2


class TestRunReport:
    def test_rollup_contents(self):
        text = run_report(synthetic_tracer(), title="demo run")
        assert text.startswith("demo run")
        assert "lane 0 (master):" in text
        assert "lane 1 (worker 1):" in text
        assert "run" in text
        assert "arcs = 7" in text

    def test_span_counts_aggregate_by_name(self):
        tracer = Tracer()
        tracer.epoch = 0.0
        tracer.add_span("task", 0.0, 1.0)
        tracer.add_span("task", 1.0, 2.0)
        assert "2 span(s)" in run_report(tracer)


class TestWriteTraceDispatch:
    @pytest.mark.parametrize("fmt", TRACE_FORMATS)
    def test_every_format_writes(self, tmp_path, fmt):
        path = tmp_path / f"out.{fmt}"
        write_trace(path, synthetic_tracer(), fmt)
        assert path.stat().st_size > 0

    def test_unknown_format_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            write_trace(tmp_path / "x", synthetic_tracer(), "svg")


class TestScheduleChromeEvents:
    @staticmethod
    def _traces():
        stage_a = StageRecord("a", [TaskCost(scalar_cmp=c) for c in (5, 9, 2, 4)])
        stage_b = StageRecord("b", [TaskCost(scalar_cmp=c) for c in (3, 3)])
        return [
            trace_stage(stage_a, CPU_SERVER, 2),
            trace_stage(stage_b, CPU_SERVER, 2),
        ]

    def test_one_thread_lane_per_virtual_worker(self):
        doc = schedule_chrome_events(self._traces())
        names = {
            e["tid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["name"] == "thread_name"
        }
        assert names == {0: "virtual worker 0", 1: "virtual worker 1"}
        task_tids = {
            e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"
        }
        assert task_tids <= {0, 1}

    def test_every_task_becomes_one_event(self):
        traces = self._traces()
        doc = schedule_chrome_events(traces)
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(events) == sum(len(t.assignment) for t in traces)

    def test_stages_laid_out_back_to_back(self):
        traces = self._traces()
        doc = schedule_chrome_events(traces, clock_hz=1.0)
        first = [e for e in doc["traceEvents"] if e["name"] == "a"]
        second = [e for e in doc["traceEvents"] if e["name"] == "b"]
        barrier = traces[0].makespan * 1e6
        assert max(e["ts"] + e["dur"] for e in first) <= barrier + 1e-6
        assert all(e["ts"] >= barrier - 1e-6 for e in second)

    def test_clock_scales_timestamps(self):
        slow = schedule_chrome_events(self._traces(), clock_hz=1.0)
        fast = schedule_chrome_events(self._traces(), clock_hz=2.0)
        slow_x = [e for e in slow["traceEvents"] if e["ph"] == "X"]
        fast_x = [e for e in fast["traceEvents"] if e["ph"] == "X"]
        for a, b in zip(slow_x, fast_x):
            assert b["dur"] == pytest.approx(a["dur"] / 2.0)

    def test_empty_traces(self):
        doc = schedule_chrome_events([])
        assert [e["ph"] for e in doc["traceEvents"]] == ["M"]


class TestChromeTraceEdgeCases:
    """Exporter corners: empty runs, sim lanes, zero-width event spans."""

    def test_empty_run_still_valid_document(self, tmp_path):
        tracer = Tracer()
        doc = chrome_trace(tracer)
        # Metadata only, but structurally complete and loadable.
        assert all(e["ph"] == "M" for e in doc["traceEvents"])
        path = tmp_path / "empty.json"
        write_chrome_trace(path, tracer)
        assert json.loads(path.read_text())["traceEvents"]

    def test_nested_sim_lanes_keep_depth_and_lane(self):
        tracer = Tracer()
        tracer.epoch = 0.0
        tracer.add_span("sim batch", 0.0, 4.0, lane=3, depth=1)
        tracer.add_span("sim arc", 1.0, 2.0, lane=3, depth=2)
        tracer.add_span("sim arc", 2.0, 3.0, lane=3, depth=2)
        doc = chrome_trace(tracer)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["tid"] for e in xs} == {3}
        names = [e["name"] for e in xs]
        assert names.count("sim arc") == 2
        # Nested spans sort inside their parent (sorted_spans order).
        assert names[0] == "sim batch"

    def test_zero_width_recovery_and_checkpoint_spans_survive(self):
        tracer = Tracer()
        tracer.epoch = 0.0
        tracer.add_span("recovery:retry", 1.0, 1.0, lane=0, depth=1)
        tracer.add_span("checkpoint:save", 2.0, 2.0, lane=0, depth=1)
        doc = chrome_trace(tracer)
        zero = {
            e["name"]: e
            for e in doc["traceEvents"]
            if e["ph"] == "X"
        }
        assert zero["recovery:retry"]["dur"] == 0.0
        assert zero["checkpoint:save"]["dur"] == 0.0
        # Valid JSON and non-negative timestamps, so viewers accept it.
        json.dumps(doc)
        assert all(e["ts"] >= 0 for e in doc["traceEvents"] if "ts" in e)

    def test_span_and_counter_round_trip_through_ledger(self, tmp_path):
        from repro.obs import RunLedger, record_from_run

        tracer = Tracer()
        with tracer.span("similarity"):
            tracer.count("arcs.resolved", 42)
            tracer.count("supervisor.retry", 2)
            tracer.gauge("memory.lane.1.peak_rss_kb", 2048)
        record = record_from_run("cluster", tracer=tracer)
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append(record)
        (back,) = ledger.read()
        assert back["metrics"]["arcs.resolved"] == 42
        assert back["recovery"]["retry"] == 2
        assert back["memory"]["worker_peak_rss_kb"] == 2048
        # The round-tripped metrics still export as OpenMetrics.
        lines = list(openmetrics_lines(back["metrics"]))
        assert lines[-1] == "# EOF"
        assert any("repro_arcs_resolved 42" in l for l in lines)


class TestOpenMetrics:
    def test_gauge_lines_sorted_and_terminated(self):
        lines = list(
            openmetrics_lines({"b.count": 2, "a.wall": 1.5, "skip": "str"})
        )
        assert lines == [
            "# TYPE repro_a_wall gauge",
            "repro_a_wall 1.5",
            "# TYPE repro_b_count gauge",
            "repro_b_count 2",
            "# EOF",
        ]

    def test_labels_escaped(self):
        lines = list(
            openmetrics_lines({"x": 1}, labels={"k": 'a"b\\c\nd'})
        )
        assert 'k="a\\"b\\\\c\\nd"' in lines[1]

    def test_accepts_tracer(self):
        tracer = Tracer()
        tracer.count("hits", 3)
        lines = list(openmetrics_lines(tracer))
        assert any(l.startswith("repro_hits") for l in lines)

    def test_write_openmetrics_file(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_openmetrics(path, {"wall": 2.0}, labels={"kind": "bench"})
        text = path.read_text()
        assert text.endswith("# EOF\n")
        assert 'repro_wall{kind="bench"} 2' in text
