"""Unit tests for :mod:`repro.cache` — the cross-run similarity store.

Covers content fingerprinting (and its invalidation through
:class:`~repro.graph.dynamic.DynamicGraph` mutation), mirrored
record/lookup, disk spill/reload, rejection of stale or corrupt
persisted entries as *clean misses*, the fork-safety pid guard, and the
exact integer threshold-boundary decisions the store must reproduce.
"""

from __future__ import annotations

import json
from fractions import Fraction

import numpy as np
import pytest

from repro import api
from repro.cache import (
    STORE_VERSION,
    SimilarityStore,
    StoreEntry,
    graph_fingerprint,
)
from repro.core import assert_same_clustering, ppscan
from repro.core.context import RunContext
from repro.graph import from_edges
from repro.graph.dynamic import DynamicGraph
from repro.graph.generators import erdos_renyi
from repro.intersect import merge_count
from repro.options import ExecutionOptions
from repro.similarity.threshold import min_cn_threshold
from repro.types import NSIM, SIM, ScanParams

PARAMS = ScanParams(0.5, 3)


def small_graph():
    return erdos_renyi(40, 140, seed=7)


class TestFingerprint:
    def test_deterministic(self):
        a = erdos_renyi(30, 90, seed=1)
        b = erdos_renyi(30, 90, seed=1)
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_distinguishes_graphs(self):
        a = erdos_renyi(30, 90, seed=1)
        b = erdos_renyi(30, 90, seed=2)
        assert graph_fingerprint(a) != graph_fingerprint(b)

    def test_changes_on_dynamic_mutation(self):
        graph = small_graph()
        dyn = DynamicGraph.from_csr(graph)
        u, v = 0, graph.num_vertices - 1
        if dyn.has_edge(u, v):
            dyn.remove_edge(u, v)
        else:
            dyn.insert_edge(u, v)
        mutated = dyn.snapshot()
        assert graph_fingerprint(mutated) != graph_fingerprint(graph)

    def test_mutation_keys_a_fresh_entry(self):
        """A structural edit must never see the old graph's overlaps."""
        graph = small_graph()
        store = SimilarityStore()
        api.cluster(graph, PARAMS, options=ExecutionOptions(cache=store))
        warm = store.entry_for(graph)
        assert warm.covered > 0

        dyn = DynamicGraph.from_csr(graph)
        u, v = 0, graph.num_vertices - 1
        if not dyn.insert_edge(u, v):
            dyn.remove_edge(u, v)
        mutated = dyn.snapshot()
        fresh = store.entry_for(mutated)
        assert fresh is not warm
        assert fresh.covered == 0

        # And the mutated graph still clusters correctly through the store.
        opts = ExecutionOptions(cache=store)
        assert_same_clustering(
            api.cluster(mutated, PARAMS),
            api.cluster(mutated, PARAMS, options=opts),
        )


class TestRecordLookup:
    def test_record_one_mirrors_reverse_arc(self):
        graph = small_graph()
        entry = StoreEntry(graph, graph_fingerprint(graph))
        u = int(np.argmax(graph.degrees))
        v = int(graph.neighbors(u)[0])
        arc = graph.edge_offset(u, v)
        rev = graph.edge_offset(v, u)
        entry.record_one(arc, 5)
        assert entry.coverage[arc] and entry.coverage[rev]
        assert entry.overlap[arc] == entry.overlap[rev] == 5
        assert entry.dirty

    def test_record_batch_mirrors(self):
        graph = small_graph()
        entry = StoreEntry(graph, graph_fingerprint(graph))
        arcs = np.arange(0, graph.num_arcs, 3, dtype=np.int64)
        entry.record(arcs, np.full(arcs.size, 4, dtype=np.int64))
        src = graph.arc_source()
        for arc in arcs[:20]:
            u, v = int(src[arc]), int(graph.dst[arc])
            assert entry.coverage[graph.edge_offset(v, u)]
            assert entry.overlap[graph.edge_offset(v, u)] == 4

    def test_recorded_overlaps_are_exact(self):
        """Every covered overlap equals the ground-truth |N[u] ∩ N[v]|."""
        graph = small_graph()
        store = SimilarityStore()
        api.cluster(graph, PARAMS, options=ExecutionOptions(cache=store))
        entry = store.entry_for(graph)
        src = graph.arc_source()
        adj = [graph.neighbors(u) for u in range(graph.num_vertices)]
        for arc in np.flatnonzero(entry.coverage):
            u, v = int(src[arc]), int(graph.dst[arc])
            truth = merge_count(adj[u], adj[v]) + 2
            assert entry.overlap[arc] == truth

    def test_pid_guard_blocks_foreign_process_writes(self):
        graph = small_graph()
        entry = StoreEntry(graph, graph_fingerprint(graph))
        entry._owner_pid += 1  # simulate a forked worker's view
        entry.record_one(0, 7)
        entry.record(np.array([1, 2]), np.array([3, 3]))
        assert entry.covered == 0
        assert not entry.dirty


class TestDiskLayer:
    def _warm_disk(self, tmp_path, graph):
        store = SimilarityStore(cache_dir=tmp_path)
        api.cluster(graph, PARAMS, options=ExecutionOptions(cache=store))
        assert store.spill() == 1
        return store

    def test_spill_and_reload_round_trip(self, tmp_path):
        graph = small_graph()
        first = self._warm_disk(tmp_path, graph)
        warm_entry = first.entry_for(graph)

        reloaded = SimilarityStore(cache_dir=tmp_path)
        entry = reloaded.entry_for(graph)
        assert np.array_equal(entry.coverage, warm_entry.coverage)
        assert np.array_equal(entry.overlap, warm_entry.overlap)

        opts = ExecutionOptions(cache=reloaded)
        result = api.cluster(graph, PARAMS, options=opts)
        assert reloaded.stats().misses == 0
        assert reloaded.stats().hits > 0
        assert_same_clustering(api.cluster(graph, PARAMS), result)

    def test_spill_is_idempotent(self, tmp_path):
        graph = small_graph()
        store = self._warm_disk(tmp_path, graph)
        assert store.spill() == 0  # nothing dirty the second time

    def _sidecar(self, tmp_path):
        (meta_path,) = tmp_path.glob("simstore-*.json")
        return meta_path

    @pytest.mark.parametrize("field,value", [
        ("version", STORE_VERSION + 1),
        ("fingerprint", "0" * 40),
        ("num_arcs", 1),
    ])
    def test_stale_sidecar_is_a_clean_miss(self, tmp_path, field, value):
        graph = small_graph()
        self._warm_disk(tmp_path, graph)
        meta_path = self._sidecar(tmp_path)
        meta = json.loads(meta_path.read_text())
        meta[field] = value
        meta_path.write_text(json.dumps(meta))

        store = SimilarityStore(cache_dir=tmp_path)
        entry = store.entry_for(graph)
        assert entry.covered == 0
        assert store.rejects == 1
        # The run still succeeds, bit-identically, rebuilding the entry.
        opts = ExecutionOptions(cache=store)
        assert_same_clustering(
            api.cluster(graph, PARAMS),
            api.cluster(graph, PARAMS, options=opts),
        )
        assert store.stats().misses > 0

    def test_truncated_npz_is_a_clean_miss(self, tmp_path):
        graph = small_graph()
        self._warm_disk(tmp_path, graph)
        (npz_path,) = tmp_path.glob("simstore-*.npz")
        npz_path.write_bytes(npz_path.read_bytes()[:40])

        store = SimilarityStore(cache_dir=tmp_path)
        entry = store.entry_for(graph)
        assert entry.covered == 0
        assert store.rejects == 1

    def test_unparseable_sidecar_is_a_clean_miss(self, tmp_path):
        graph = small_graph()
        self._warm_disk(tmp_path, graph)
        self._sidecar(tmp_path).write_text("{not json")
        store = SimilarityStore(cache_dir=tmp_path)
        assert store.entry_for(graph).covered == 0
        assert store.rejects == 1


def boundary_graph(common: int):
    """deg(u) = deg(v) = 5 with ``common`` shared open neighbors.

    At ε = 1/2 the similarity threshold for the (u, v) arc is exactly
    ``sqrt(ε² · 6 · 6) = 3``, hit with equality when ``common == 1``
    (closed overlap {u, v, c} = 3).
    """
    u, v = 0, 1
    edges = [(u, v)]
    nxt = 2
    for _ in range(common):
        edges += [(u, nxt), (v, nxt)]
        nxt += 1
    for _ in range(4 - common):  # pad u to degree 5
        edges.append((u, nxt))
        nxt += 1
    for _ in range(4 - common):  # pad v to degree 5
        edges.append((v, nxt))
        nxt += 1
    return from_edges(edges, num_vertices=nxt)


class TestThresholdBoundary:
    """overlap² · q² == p² · (d(u)+1)(d(v)+1) exactly: ``>=`` must win."""

    EPS = Fraction(1, 2)

    def test_threshold_is_exact(self):
        # 3² · 2² == 1² · 6 · 6 — the boundary case of Definition 2.2.
        assert min_cn_threshold(self.EPS, 5, 5) == 3
        assert 3 * 3 * 4 == 1 * 1 * 6 * 6

    @pytest.mark.parametrize("common,expected", [
        (0, NSIM),  # overlap 2, one below the boundary
        (1, SIM),   # overlap 3 == threshold: equality is similar
        (2, SIM),   # overlap 4, one above
    ])
    def test_cached_decision_matches_kernel(self, common, expected):
        graph = boundary_graph(common)
        params = ScanParams(0.5, 2)
        arc = graph.edge_offset(0, 1)

        # Reference: the plain kernel path, no store.
        ctx = RunContext(graph, params, kernel="merge")
        plain = SIM if ctx.compsim_arc(0, arc) else NSIM
        assert plain == expected

        # Miss path (computes + records), then hit path (reads back).
        store = SimilarityStore()
        cctx = RunContext(graph, params, kernel="merge", store=store)
        adj_u, adj_v = graph.neighbors(0), graph.neighbors(1)
        mcn = cctx.mcn[arc]
        assert cctx.engine.resolve_arc_cached(arc, adj_u, adj_v, mcn) == expected
        assert cctx.engine.resolve_arc_cached(arc, adj_u, adj_v, mcn) == expected
        entry = store.entry_for(graph)
        assert entry.hits == 1 and entry.misses == 1
        assert entry.overlap[arc] == common + 2

        # Integer arithmetic is the single source of truth.
        p, q = self.EPS.numerator, self.EPS.denominator
        lhs = int(entry.overlap[arc]) ** 2 * q * q
        rhs = p * p * (graph.degree(0) + 1) * (graph.degree(1) + 1)
        assert (lhs >= rhs) == (expected == SIM)

    @pytest.mark.parametrize("common", [0, 1, 2])
    def test_full_run_boundary_identical_with_store(self, common):
        graph = boundary_graph(common)
        params = ScanParams(0.5, 2)
        store = SimilarityStore()
        reference = ppscan(graph, params)
        cold = api.cluster(graph, params, options=ExecutionOptions(cache=store))
        warm = api.cluster(graph, params, options=ExecutionOptions(cache=store))
        assert_same_clustering(reference, cold)
        assert_same_clustering(reference, warm)

    def test_prefold_respects_boundary(self):
        """The vectorized prefold must decide equality the same way."""
        graph = boundary_graph(1)
        params = ScanParams(0.5, 2)
        store = SimilarityStore()
        ctx = RunContext(graph, params, kernel="merge", store=store)
        arc = graph.edge_offset(0, 1)
        store.entry_for(graph).record_one(arc, 3)
        from repro.types import UNKNOWN

        states = np.full(graph.num_arcs, UNKNOWN, dtype=np.int8)
        folded = ctx.engine.prefold_cached(states, ctx.mcn_np)
        assert folded == 2  # the arc and its mirror
        assert states[arc] == SIM


class TestSpillDurability:
    """Spills go through the shared atomic-write helper: no temp files
    left behind, and a torn write of either file is a clean miss."""

    def _warm_disk(self, tmp_path, graph):
        store = SimilarityStore(cache_dir=tmp_path)
        api.cluster(graph, PARAMS, options=ExecutionOptions(cache=store))
        assert store.spill() == 1
        return store

    def test_no_temp_droppings(self, tmp_path):
        self._warm_disk(tmp_path, small_graph())
        suffixes = {p.suffix for p in tmp_path.iterdir()}
        assert suffixes == {".npz", ".json"}

    def test_torn_sidecar_is_a_clean_miss(self, tmp_path):
        graph = small_graph()
        self._warm_disk(tmp_path, graph)
        sidecar = next(tmp_path.glob("*.json"))
        text = sidecar.read_text()
        sidecar.write_text(text[: len(text) // 2])
        cold = SimilarityStore(cache_dir=tmp_path)
        entry = cold.entry_for(graph)
        assert entry.covered == 0
        assert cold.rejects == 1

    def test_torn_payload_is_a_clean_miss(self, tmp_path):
        graph = small_graph()
        self._warm_disk(tmp_path, graph)
        payload = next(tmp_path.glob("*.npz"))
        raw = payload.read_bytes()
        payload.write_bytes(raw[: len(raw) // 2])
        cold = SimilarityStore(cache_dir=tmp_path)
        entry = cold.entry_for(graph)
        assert entry.covered == 0
        assert cold.rejects == 1

    def test_respill_after_torn_write_recovers(self, tmp_path):
        graph = small_graph()
        self._warm_disk(tmp_path, graph)
        sidecar = next(tmp_path.glob("*.json"))
        sidecar.write_text("{")
        cold = SimilarityStore(cache_dir=tmp_path)
        api.cluster(graph, PARAMS, options=ExecutionOptions(cache=cold))
        assert cold.spill() == 1
        warm = SimilarityStore(cache_dir=tmp_path)
        assert warm.entry_for(graph).covered > 0
        assert warm.rejects == 0


def _ground_truth_overlaps(graph):
    """Exact closed overlap |N[u] ∩ N[v]| for every arc."""
    src = graph.arc_source()
    adj = [graph.neighbors(u) for u in range(graph.num_vertices)]
    truth = np.empty(graph.num_arcs, dtype=np.int64)
    for arc in range(graph.num_arcs):
        u, v = int(src[arc]), int(graph.dst[arc])
        truth[arc] = merge_count(adj[u], adj[v]) + 2
    return truth


class TestConcurrentReaders:
    """Two threads resolving *overlapping* arc sets against one store.

    The service runs heavy queries on an executor, so the same
    :class:`StoreEntry` is written from multiple threads at once.  The
    invariants: every committed overlap is the exact ground truth
    (idempotent double-commits, never a torn mix), the coverage bitmap
    stays mirror-consistent (arc covered ⇔ reverse arc covered), and a
    spill taken mid-write snapshots a coherent entry.
    """

    ROUNDS = 4

    def _record_range(self, entry, truth, arcs, barrier):
        barrier.wait()
        # Interleave the batch and scalar write paths in small chunks so
        # the two threads genuinely overlap inside the entry.
        for start in range(0, len(arcs), 16):
            chunk = arcs[start : start + 16]
            entry.record(chunk, truth[chunk])
            for arc in chunk[:2]:
                entry.record_one(int(arc), int(truth[arc]))

    def test_two_threads_overlapping_arc_sets(self):
        import threading

        graph = small_graph()
        truth = _ground_truth_overlaps(graph)
        entry = StoreEntry(graph, graph_fingerprint(graph))
        arcs = np.arange(graph.num_arcs, dtype=np.int64)
        # Deliberately overlapping thirds: the middle third is committed
        # by both threads (the double-commit case).
        split_a = arcs[: 2 * graph.num_arcs // 3]
        split_b = arcs[graph.num_arcs // 3 :]

        for _ in range(self.ROUNDS):
            barrier = threading.Barrier(2)
            threads = [
                threading.Thread(
                    target=self._record_range,
                    args=(entry, truth, part, barrier),
                )
                for part in (split_a, split_b)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert entry.covered == graph.num_arcs
        assert np.array_equal(entry.overlap, truth)
        rev = entry._reverse()
        assert np.array_equal(entry.coverage, entry.coverage[rev])
        assert np.array_equal(entry.overlap, entry.overlap[rev])

    def test_concurrent_entry_for_is_single_entry(self):
        import threading

        graph = small_graph()
        store = SimilarityStore()
        barrier = threading.Barrier(8)
        seen = []
        lock = threading.Lock()

        def grab():
            barrier.wait()
            entry = store.entry_for(graph)
            with lock:
                seen.append(entry)

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == 8
        assert all(e is seen[0] for e in seen)

    def test_concurrent_resolution_stays_exact(self):
        """Two engine contexts racing over every arc: decisions match
        the plain kernel and the store ends up exactly ground truth."""
        import threading

        graph = small_graph()
        truth = _ground_truth_overlaps(graph)
        store = SimilarityStore()
        src = graph.arc_source()
        adj = [graph.neighbors(u) for u in range(graph.num_vertices)]

        plain = RunContext(graph, PARAMS, kernel="merge")
        reference = [
            SIM if plain.compsim_arc(int(src[arc]), arc) else NSIM
            for arc in range(graph.num_arcs)
        ]

        barrier = threading.Barrier(2)
        failures = []

        def resolve_all(order):
            ctx = RunContext(graph, PARAMS, kernel="merge", store=store)
            barrier.wait()
            for arc in order:
                u, v = int(src[arc]), int(graph.dst[arc])
                got = ctx.engine.resolve_arc_cached(
                    arc, adj[u], adj[v], ctx.mcn[arc]
                )
                if got != reference[arc]:
                    failures.append((arc, got))

        forward = range(graph.num_arcs)
        backward = range(graph.num_arcs - 1, -1, -1)
        threads = [
            threading.Thread(target=resolve_all, args=(order,))
            for order in (forward, backward)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not failures
        entry = store.entry_for(graph)
        assert entry.covered == graph.num_arcs
        assert np.array_equal(entry.overlap, truth)

    def test_spill_during_writes_snapshots_consistently(self, tmp_path):
        import threading

        graph = small_graph()
        truth = _ground_truth_overlaps(graph)
        store = SimilarityStore(cache_dir=tmp_path)
        entry = store.entry_for(graph)
        arcs = np.arange(graph.num_arcs, dtype=np.int64)
        barrier = threading.Barrier(2)

        def writer():
            barrier.wait()
            for start in range(0, len(arcs), 8):
                chunk = arcs[start : start + 8]
                entry.record(chunk, truth[chunk])

        t = threading.Thread(target=writer)
        t.start()
        barrier.wait()
        while t.is_alive():
            store.spill()
        t.join()
        store.spill()  # final spill captures the complete entry

        reloaded = SimilarityStore(cache_dir=tmp_path).entry_for(graph)
        covered = np.flatnonzero(reloaded.coverage)
        # Whatever made it to disk is exact and mirror-consistent.
        assert np.array_equal(reloaded.overlap[covered], truth[covered])
        rev = reloaded._reverse()
        assert np.array_equal(reloaded.coverage, reloaded.coverage[rev])
        # The final spill happened after the writer finished.
        assert reloaded.covered == graph.num_arcs
