"""Graph preprocessing transforms: relabeling, components, subgraphs."""

import numpy as np
import pytest

from repro.core import assert_same_clustering, ppscan
from repro.graph import (
    complete_graph,
    connected_component_labels,
    from_edges,
    largest_connected_component,
    relabel_by_degree,
    subgraph,
)
from repro.graph.generators import erdos_renyi
from repro.types import ScanParams


class TestRelabelByDegree:
    def test_degrees_descending(self):
        g = erdos_renyi(50, 200, seed=1)
        relabelled, _ = relabel_by_degree(g)
        degrees = relabelled.degrees
        assert np.all(np.diff(degrees) <= 0)

    def test_ascending_option(self):
        g = erdos_renyi(50, 200, seed=1)
        relabelled, _ = relabel_by_degree(g, descending=False)
        assert np.all(np.diff(relabelled.degrees) >= 0)

    def test_mapping_is_isomorphism(self):
        g = erdos_renyi(40, 150, seed=2)
        relabelled, old_of_new = relabel_by_degree(g)
        for new_u in range(relabelled.num_vertices):
            old_u = int(old_of_new[new_u])
            old_nbrs = sorted(g.neighbors(old_u).tolist())
            new_nbrs = sorted(
                int(old_of_new[v]) for v in relabelled.neighbors(new_u)
            )
            assert new_nbrs == old_nbrs

    def test_clustering_invariant_under_relabeling(self):
        """Structural clustering commutes with isomorphism."""
        g = erdos_renyi(60, 260, seed=3)
        relabelled, old_of_new = relabel_by_degree(g)
        params = ScanParams(0.4, 2)
        original = ppscan(g, params)
        remapped = ppscan(relabelled, params)
        # Map the relabelled roles back and compare.
        roles_back = np.empty_like(original.roles)
        roles_back[old_of_new] = remapped.roles
        assert np.array_equal(roles_back, original.roles)
        # Cluster structure: same multiset of cluster sizes.
        orig_sizes = sorted(len(m) for m in original.clusters().values())
        new_sizes = sorted(len(m) for m in remapped.clusters().values())
        assert orig_sizes == new_sizes


class TestComponents:
    def test_labels_single_component(self):
        labels = connected_component_labels(complete_graph(5))
        assert set(labels.tolist()) == {0}

    def test_labels_two_components(self):
        g = from_edges([(0, 1), (2, 3)], num_vertices=5)
        labels = connected_component_labels(g)
        assert labels[0] == labels[1] == 0
        assert labels[2] == labels[3] == 2
        assert labels[4] == 4  # isolated vertex: its own component

    def test_largest_component(self):
        g = from_edges(
            [(0, 1), (1, 2), (0, 2), (5, 6)], num_vertices=8
        )
        lcc, old_ids = largest_connected_component(g)
        assert lcc.num_vertices == 3
        assert sorted(old_ids.tolist()) == [0, 1, 2]
        lcc.validate()

    def test_clustering_on_lcc_matches_full_graph(self):
        g = from_edges(
            [(0, 1), (1, 2), (0, 2), (2, 3), (7, 8)], num_vertices=9
        )
        params = ScanParams(0.5, 2)
        full = ppscan(g, params)
        lcc, old_ids = largest_connected_component(g)
        sub = ppscan(lcc, params)
        for new_v in range(lcc.num_vertices):
            assert sub.roles[new_v] == full.roles[int(old_ids[new_v])]


class TestSubgraph:
    def test_induced_edges_only(self):
        g = complete_graph(6)
        sub, old_ids = subgraph(g, np.array([0, 2, 4]))
        assert sub.num_vertices == 3
        assert sub.num_edges == 3  # triangle among the kept vertices
        assert old_ids.tolist() == [0, 2, 4]

    def test_duplicate_vertices_collapsed(self):
        g = complete_graph(4)
        sub, old_ids = subgraph(g, np.array([1, 1, 3]))
        assert sub.num_vertices == 2
        assert old_ids.tolist() == [1, 3]

    def test_empty_selection(self):
        g = complete_graph(4)
        sub, old_ids = subgraph(g, np.array([], dtype=np.int64))
        assert sub.num_vertices == 0
        assert old_ids.size == 0
