"""Benchmark harness: datasets, reporting, experiment smoke at tiny scale."""

import pytest

from repro.bench import (
    EXPERIMENTS,
    EVAL_DATASETS,
    ROLL_DEGREES,
    clear_caches,
    format_seconds,
    format_series,
    format_table,
    roll,
    run_algorithm,
    standin,
)
from repro.types import ScanParams

TINY = 0.05


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestDatasets:
    def test_standin_cached(self):
        a = standin("orkut", TINY)
        b = standin("orkut", TINY)
        assert a is b

    def test_roll_cached_and_equal_edges(self):
        graphs = {d: roll(d, TINY) for d in ROLL_DEGREES}
        edges = [g.num_edges for g in graphs.values()]
        # Equal edge budget within generator tolerance.
        assert max(edges) < 1.3 * min(edges)
        avg = [g.average_degree() for g in graphs.values()]
        assert avg == sorted(avg)

    def test_run_cached(self):
        g = standin("orkut", TINY)
        p = ScanParams(0.5, 2)
        a = run_algorithm("ppSCAN", "orkut", g, p)
        b = run_algorithm("ppSCAN", "orkut", g, p)
        assert a is b

    def test_run_cache_distinguishes_kwargs(self):
        g = standin("orkut", TINY)
        p = ScanParams(0.5, 2)
        a = run_algorithm("ppSCAN", "orkut", g, p)
        b = run_algorithm("ppSCAN", "orkut", g, p, kernel="merge")
        assert a is not b


class TestReporting:
    def test_format_seconds_ranges(self):
        assert format_seconds(None) == "RE"
        assert format_seconds(float("inf")) == "TLE"
        assert format_seconds(123.0) == "123s"
        assert format_seconds(1.5) == "1.50s"
        assert format_seconds(0.0042) == "4.20ms"
        assert format_seconds(2e-5) == "20.0us"

    def test_format_table_alignment(self):
        text = format_table("T", ["a", "bb"], [["1", "2"], ["33", "44"]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "--" in lines[2]
        assert len({len(line) for line in lines[1:]}) == 1

    def test_format_series(self):
        text = format_series(
            "S", "x", [1, 2], {"alg": [10, 20]}, fmt=lambda v: f"{v}!"
        )
        assert "10!" in text and "20!" in text


class TestExperimentsSmoke:
    """Every registered experiment runs end-to-end at tiny scale."""

    @pytest.mark.parametrize("exp_id", sorted(EXPERIMENTS))
    def test_runs_and_produces_text(self, exp_id):
        if exp_id in ("fig2", "fig3"):
            pytest.skip("covered by the dedicated shape test (slow: SCAN)")
        result = EXPERIMENTS[exp_id](scale=TINY)
        assert result.text.strip()
        assert result.data

    def test_fig2_fig3_share_runs(self):
        # fig2 (CPU) then fig3 (KNL): the SCAN/pSCAN/anySCAN runs are
        # reused from cache; only lane-width-specific runs differ.
        fig2 = EXPERIMENTS["fig2"](
            scale=TINY, eps_values=(0.4,), datasets=("orkut",)
        )
        fig3 = EXPERIMENTS["fig3"](
            scale=TINY, eps_values=(0.4,), datasets=("orkut",)
        )
        assert "orkut" in fig2.data and "orkut" in fig3.data

    def test_fig4_normalized_below_one(self):
        result = EXPERIMENTS["fig4"](
            scale=TINY, eps_values=(0.3, 0.6), datasets=("orkut",)
        )
        for series in result.data.values():
            for values in series.values():
                assert all(0 <= v <= 1.0 for v in values)

    def test_fig6_contains_paper_stage_groups(self):
        result = EXPERIMENTS["fig6"](
            scale=TINY, datasets=("orkut",), threads=(1, 4)
        )
        series = result.data["orkut"]
        assert "2. Core Checking and Consolidating" in series
        assert "The Whole ppSCAN" in series

    def test_datasets_constant(self):
        assert EVAL_DATASETS == ("orkut", "webbase", "twitter", "friendster")
