"""Branchless merge and galloping CompSim — the §3.2.2 alternatives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.intersect import (
    OpCounter,
    branchless_merge_count,
    galloping_compsim,
    merge_compsim,
    merge_count,
)

sorted_arrays = st.lists(
    st.integers(min_value=0, max_value=300), max_size=100
).map(lambda xs: sorted(set(xs)))


class TestBranchless:
    @pytest.mark.parametrize(
        "a,b",
        [
            ([], []),
            ([1, 2, 3], [2, 3, 4]),
            (list(range(0, 60, 2)), list(range(0, 60, 3))),
            ([5], list(range(10))),
        ],
    )
    def test_matches_merge(self, a, b):
        assert branchless_merge_count(a, b) == merge_count(a, b)

    @given(sorted_arrays, sorted_arrays)
    def test_property_matches_set_semantics(self, a, b):
        assert branchless_merge_count(a, b) == len(set(a) & set(b))

    def test_counts_branchless_not_scalar(self):
        counter = OpCounter()
        branchless_merge_count([1, 2, 3], [2, 3, 4], counter)
        assert counter.branchless_cmp > 0
        assert counter.scalar_cmp == 0

    def test_never_early_terminates(self):
        """The §3.2.2 limitation: cost is the full merge regardless of
        how quickly the predicate could have been decided."""
        a = list(range(100))
        b = list(range(100))
        full = OpCounter()
        branchless_merge_count(a, b, full)
        again = OpCounter()
        branchless_merge_count(a, b, again)
        assert full.branchless_cmp == again.branchless_cmp == 100


class TestGallopingCompsim:
    @given(sorted_arrays, sorted_arrays, st.integers(min_value=1, max_value=200))
    def test_matches_merge_compsim(self, a, b, min_cn):
        assert galloping_compsim(a, b, min_cn) == merge_compsim(a, b, min_cn)

    def test_skewed_pair_few_probes(self):
        """Galloping's win case: tiny array against a huge one."""
        small = [5000, 5001]
        huge = list(range(10000))
        counter = OpCounter()
        galloping_compsim(small, huge, 4, counter)
        merge_counter = OpCounter()
        merge_compsim(small, huge, 4, merge_counter)
        assert counter.scalar_cmp < merge_counter.scalar_cmp / 10

    def test_interleaved_pair_not_better(self):
        """The paper's rejection case: similar-length interleaved arrays
        give galloping no skips to exploit."""
        a = list(range(0, 400, 2))
        b = list(range(1, 401, 2))
        g = OpCounter()
        galloping_compsim(a, b, 150, g)
        m = OpCounter()
        merge_compsim(a, b, 150, m)
        assert g.scalar_cmp >= m.scalar_cmp * 0.5  # no order-of-magnitude win

    def test_early_exit_counted(self):
        counter = OpCounter()
        galloping_compsim([1, 2], [3, 4, 5, 6, 7], 9, counter)
        assert counter.early_exits == 1
        assert counter.scalar_cmp == 0

    def test_trivial_sim(self):
        assert galloping_compsim([1], [2], 2)
