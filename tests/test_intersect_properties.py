"""Property-based tests: every kernel agrees with set semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.intersect import (
    OpCounter,
    galloping_count,
    merge_compsim,
    merge_count,
    pivot_compsim,
    pivot_vectorized_compsim,
    pivot_vectorized_count,
)

sorted_arrays = st.lists(
    st.integers(min_value=0, max_value=400), max_size=120
).map(lambda xs: sorted(set(xs)))

lanes_strategy = st.sampled_from([2, 3, 4, 8, 16, 32])


@given(sorted_arrays, sorted_arrays)
def test_full_count_kernels_agree(a, b):
    expected = len(set(a) & set(b))
    assert merge_count(a, b) == expected
    assert galloping_count(a, b) == expected
    assert pivot_vectorized_count(a, b, lanes=16) == expected


@given(sorted_arrays, sorted_arrays, lanes_strategy)
def test_vectorized_count_lane_invariant(a, b, lanes):
    assert pivot_vectorized_count(a, b, lanes=lanes) == len(set(a) & set(b))


@given(sorted_arrays, sorted_arrays, st.integers(min_value=1, max_value=300))
def test_compsim_kernels_match_reference_predicate(a, b, min_cn):
    expected = len(set(a) & set(b)) + 2 >= min_cn
    assert merge_compsim(a, b, min_cn) == expected
    assert pivot_compsim(a, b, min_cn) == expected


@given(
    sorted_arrays,
    sorted_arrays,
    st.integers(min_value=1, max_value=300),
    lanes_strategy,
)
def test_vectorized_compsim_matches_reference(a, b, min_cn, lanes):
    expected = len(set(a) & set(b)) + 2 >= min_cn
    assert pivot_vectorized_compsim(a, b, min_cn, lanes=lanes) == expected


@given(sorted_arrays, sorted_arrays, st.integers(min_value=1, max_value=300))
def test_kernels_symmetric(a, b, min_cn):
    assert merge_compsim(a, b, min_cn) == merge_compsim(b, a, min_cn)
    assert pivot_vectorized_compsim(
        a, b, min_cn, lanes=8
    ) == pivot_vectorized_compsim(b, a, min_cn, lanes=8)


@given(sorted_arrays, sorted_arrays)
def test_early_termination_never_exceeds_full_cost(a, b):
    """The bounded kernel never does more comparisons than a full merge."""
    full = OpCounter()
    merge_count(a, b, full)
    for min_cn in (1, 3, 8, 50):
        bounded = OpCounter()
        merge_compsim(a, b, min_cn, bounded)
        assert bounded.scalar_cmp <= full.scalar_cmp


@settings(max_examples=50)
@given(sorted_arrays, sorted_arrays, st.integers(min_value=1, max_value=50))
def test_compsim_monotone_in_threshold(a, b, min_cn):
    """If similar at threshold k, then similar at every threshold < k."""
    if merge_compsim(a, b, min_cn + 1):
        assert merge_compsim(a, b, min_cn)
