"""Union-find: sequential reference and wait-free-structured variant."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.unionfind import AtomicUnionFind, UnionFind


@pytest.mark.parametrize("cls", [UnionFind, AtomicUnionFind])
class TestBasics:
    def test_initially_disjoint(self, cls):
        uf = cls(5)
        assert len(uf) == 5
        for i in range(5):
            assert uf.find(i) == i
        assert not uf.same_set(0, 1)

    def test_union_merges(self, cls):
        uf = cls(4)
        assert uf.union(0, 1)
        assert uf.same_set(0, 1)
        assert not uf.same_set(0, 2)

    def test_union_idempotent(self, cls):
        uf = cls(4)
        assert uf.union(0, 1)
        assert not uf.union(0, 1)
        assert not uf.union(1, 0)

    def test_transitivity(self, cls):
        uf = cls(6)
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(4, 5)
        assert uf.same_set(0, 2)
        assert uf.same_set(5, 4)
        assert not uf.same_set(2, 4)

    def test_component_labels_consistent(self, cls):
        uf = cls(7)
        uf.union(0, 3)
        uf.union(3, 6)
        uf.union(1, 2)
        labels = uf.component_labels()
        assert labels[0] == labels[3] == labels[6]
        assert labels[1] == labels[2]
        assert labels[0] != labels[1]
        assert labels[4] != labels[5]

    def test_chain_path_compression(self, cls):
        n = 200
        uf = cls(n)
        for i in range(n - 1):
            uf.union(i, i + 1)
        assert all(uf.find(i) == uf.find(0) for i in range(n))


class TestCounters:
    def test_sequential_counts(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(0, 1)
        assert uf.num_unions == 1
        assert uf.num_finds >= 4

    def test_atomic_cas_accounting(self):
        uf = AtomicUnionFind(4)
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(0, 3)
        assert uf.num_unions == 3
        assert uf.cas_attempts == 3  # uncontended: one CAS per union

    def test_atomic_link_by_lower_index(self):
        uf = AtomicUnionFind(5)
        uf.union(4, 2)
        assert uf.find(4) == 2  # higher root linked under lower

    def test_snapshot_parents(self):
        uf = AtomicUnionFind(3)
        uf.union(0, 1)
        snap = uf.snapshot_parents()
        uf.union(1, 2)
        assert len(snap) == 3
        assert snap != uf.snapshot_parents()


@given(
    st.integers(min_value=1, max_value=40),
    st.lists(st.tuples(st.integers(0, 39), st.integers(0, 39)), max_size=80),
)
def test_atomic_equals_sequential(n, pairs):
    """Both implementations induce the same partition for any union seq."""
    seq, atom = UnionFind(n), AtomicUnionFind(n)
    for x, y in pairs:
        x, y = x % n, y % n
        assert seq.union(x, y) == atom.union(x, y)
    for x in range(n):
        for y in range(x + 1, n):
            assert seq.same_set(x, y) == atom.same_set(x, y)
