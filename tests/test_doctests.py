"""Run the executable examples embedded in key public docstrings."""

import doctest

import pytest

import repro.graph.builders
import repro.graph.dynamic
import repro.intersect.merge
import repro.parallel.scheduler
import repro.parallel.simthread
import repro.quality
import repro.similarity.threshold

MODULES = [
    repro.graph.builders,
    repro.graph.dynamic,
    repro.intersect.merge,
    repro.parallel.scheduler,
    repro.parallel.simthread,
    repro.quality,
    repro.similarity.threshold,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    failures, tests = doctest.testmod(module, verbose=False).failed, None
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctests"
    assert results.failed == 0
