"""Edge-list and binary CSR IO round trips."""

import numpy as np
import pytest

from repro.graph import (
    from_edges,
    load_graph,
    read_csr_binary,
    read_edge_list,
    write_csr_binary,
    write_edge_list,
)
from repro.graph.generators import erdos_renyi


@pytest.fixture
def sample():
    return erdos_renyi(50, 180, seed=3)


class TestEdgeList:
    def test_roundtrip(self, sample, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(sample, path)
        loaded = read_edge_list(path)
        assert np.array_equal(loaded.offsets, sample.offsets)
        assert np.array_equal(loaded.dst, sample.dst)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1\n# mid\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError, match="malformed"):
            read_edge_list(path)

    def test_extra_columns_tolerated(self, tmp_path):
        # SNAP files sometimes carry weights/timestamps in extra columns.
        path = tmp_path / "g.txt"
        path.write_text("0 1 17\n1 2 42\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_compact_ids(self, tmp_path):
        path = tmp_path / "sparse.txt"
        path.write_text("1000000 2000000\n2000000 3000000\n")
        g = read_edge_list(path, compact_ids=True)
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_compact_ids_preserves_order(self, tmp_path):
        path = tmp_path / "sparse.txt"
        path.write_text("50 10\n10 99\n")
        g = read_edge_list(path, compact_ids=True)
        # ascending original ids: 10 -> 0, 50 -> 1, 99 -> 2
        assert g.has_edge(0, 1) and g.has_edge(0, 2)
        assert not g.has_edge(1, 2)

    def test_gzip_edge_list(self, sample, tmp_path):
        import gzip

        plain = tmp_path / "g.txt"
        write_edge_list(sample, plain)
        gz = tmp_path / "g.txt.gz"
        gz.write_bytes(gzip.compress(plain.read_bytes()))
        loaded = read_edge_list(gz)
        assert np.array_equal(loaded.dst, sample.dst)
        assert load_graph(gz).num_edges == sample.num_edges


class TestBinary:
    def test_roundtrip(self, sample, tmp_path):
        path = tmp_path / "g.bin"
        write_csr_binary(sample, path)
        loaded = read_csr_binary(path)
        assert np.array_equal(loaded.offsets, sample.offsets)
        assert np.array_equal(loaded.dst, sample.dst)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "g.bin"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 32)
        with pytest.raises(ValueError, match="magic"):
            read_csr_binary(path)

    def test_empty_graph_roundtrip(self, tmp_path):
        g = from_edges([], num_vertices=3)
        path = tmp_path / "e.bin"
        write_csr_binary(g, path)
        loaded = read_csr_binary(path)
        assert loaded.num_vertices == 3 and loaded.num_edges == 0


class TestMatrixMarket:
    def test_roundtrip(self, sample, tmp_path):
        from repro.graph import read_matrix_market, write_matrix_market

        path = tmp_path / "g.mtx"
        write_matrix_market(sample, path)
        loaded = read_matrix_market(path)
        assert np.array_equal(loaded.offsets, sample.offsets)
        assert np.array_equal(loaded.dst, sample.dst)

    def test_one_based_indices(self, tmp_path):
        from repro.graph import read_matrix_market

        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "3 3 2\n2 1\n3 2\n"
        )
        g = read_matrix_market(path)
        assert g.num_vertices == 3
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_values_ignored(self, tmp_path):
        from repro.graph import read_matrix_market

        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% comment\n"
            "2 2 2\n1 2 0.5\n2 1 0.5\n"
        )
        g = read_matrix_market(path)
        assert g.num_edges == 1

    def test_bad_header_rejected(self, tmp_path):
        from repro.graph import read_matrix_market

        path = tmp_path / "g.mtx"
        path.write_text("not a matrix market file\n1 1\n")
        with pytest.raises(ValueError, match="header"):
            read_matrix_market(path)

    def test_dense_format_rejected(self, tmp_path):
        from repro.graph import read_matrix_market

        path = tmp_path / "g.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n")
        with pytest.raises(ValueError, match="coordinate"):
            read_matrix_market(path)


class TestLoadDispatch:
    def test_load_text(self, sample, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(sample, path)
        assert load_graph(path).num_edges == sample.num_edges

    def test_load_binary(self, sample, tmp_path):
        path = tmp_path / "g.bin"
        write_csr_binary(sample, path)
        assert load_graph(path).num_edges == sample.num_edges

    def test_load_matrix_market(self, sample, tmp_path):
        from repro.graph import write_matrix_market

        path = tmp_path / "g.mtx"
        write_matrix_market(sample, path)
        assert load_graph(path).num_edges == sample.num_edges
