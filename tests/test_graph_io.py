"""Edge-list and binary CSR IO round trips."""

import numpy as np
import pytest

from repro.graph import (
    from_edges,
    load_graph,
    read_csr_binary,
    read_edge_list,
    write_csr_binary,
    write_edge_list,
)
from repro.graph.generators import erdos_renyi


@pytest.fixture
def sample():
    return erdos_renyi(50, 180, seed=3)


class TestEdgeList:
    def test_roundtrip(self, sample, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(sample, path)
        loaded = read_edge_list(path)
        assert np.array_equal(loaded.offsets, sample.offsets)
        assert np.array_equal(loaded.dst, sample.dst)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1\n# mid\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError, match="malformed"):
            read_edge_list(path)

    def test_extra_columns_tolerated(self, tmp_path):
        # SNAP files sometimes carry weights/timestamps in extra columns.
        path = tmp_path / "g.txt"
        path.write_text("0 1 17\n1 2 42\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_compact_ids(self, tmp_path):
        path = tmp_path / "sparse.txt"
        path.write_text("1000000 2000000\n2000000 3000000\n")
        g = read_edge_list(path, compact_ids=True)
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_compact_ids_preserves_order(self, tmp_path):
        path = tmp_path / "sparse.txt"
        path.write_text("50 10\n10 99\n")
        g = read_edge_list(path, compact_ids=True)
        # ascending original ids: 10 -> 0, 50 -> 1, 99 -> 2
        assert g.has_edge(0, 1) and g.has_edge(0, 2)
        assert not g.has_edge(1, 2)

    def test_gzip_edge_list(self, sample, tmp_path):
        import gzip

        plain = tmp_path / "g.txt"
        write_edge_list(sample, plain)
        gz = tmp_path / "g.txt.gz"
        gz.write_bytes(gzip.compress(plain.read_bytes()))
        loaded = read_edge_list(gz)
        assert np.array_equal(loaded.dst, sample.dst)
        assert load_graph(gz).num_edges == sample.num_edges


class TestBinary:
    def test_roundtrip(self, sample, tmp_path):
        path = tmp_path / "g.bin"
        write_csr_binary(sample, path)
        loaded = read_csr_binary(path)
        assert np.array_equal(loaded.offsets, sample.offsets)
        assert np.array_equal(loaded.dst, sample.dst)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "g.bin"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 32)
        with pytest.raises(ValueError, match="magic"):
            read_csr_binary(path)

    def test_empty_graph_roundtrip(self, tmp_path):
        g = from_edges([], num_vertices=3)
        path = tmp_path / "e.bin"
        write_csr_binary(g, path)
        loaded = read_csr_binary(path)
        assert loaded.num_vertices == 3 and loaded.num_edges == 0


class TestMatrixMarket:
    def test_roundtrip(self, sample, tmp_path):
        from repro.graph import read_matrix_market, write_matrix_market

        path = tmp_path / "g.mtx"
        write_matrix_market(sample, path)
        loaded = read_matrix_market(path)
        assert np.array_equal(loaded.offsets, sample.offsets)
        assert np.array_equal(loaded.dst, sample.dst)

    def test_one_based_indices(self, tmp_path):
        from repro.graph import read_matrix_market

        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "3 3 2\n2 1\n3 2\n"
        )
        g = read_matrix_market(path)
        assert g.num_vertices == 3
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_values_ignored(self, tmp_path):
        from repro.graph import read_matrix_market

        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% comment\n"
            "2 2 2\n1 2 0.5\n2 1 0.5\n"
        )
        g = read_matrix_market(path)
        assert g.num_edges == 1

    def test_bad_header_rejected(self, tmp_path):
        from repro.graph import read_matrix_market

        path = tmp_path / "g.mtx"
        path.write_text("not a matrix market file\n1 1\n")
        with pytest.raises(ValueError, match="header"):
            read_matrix_market(path)

    def test_dense_format_rejected(self, tmp_path):
        from repro.graph import read_matrix_market

        path = tmp_path / "g.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n")
        with pytest.raises(ValueError, match="coordinate"):
            read_matrix_market(path)


class TestLoadDispatch:
    def test_load_text(self, sample, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(sample, path)
        assert load_graph(path).num_edges == sample.num_edges

    def test_load_binary(self, sample, tmp_path):
        path = tmp_path / "g.bin"
        write_csr_binary(sample, path)
        assert load_graph(path).num_edges == sample.num_edges

    def test_load_matrix_market(self, sample, tmp_path):
        from repro.graph import write_matrix_market

        path = tmp_path / "g.mtx"
        write_matrix_market(sample, path)
        assert load_graph(path).num_edges == sample.num_edges


class TestFormatErrors:
    """Malformed input raises GraphFormatError with path:line context."""

    def test_negative_id_located(self, tmp_path):
        from repro.graph import GraphFormatError

        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n2 -3\n")
        with pytest.raises(GraphFormatError) as excinfo:
            read_edge_list(path)
        assert excinfo.value.line == 3
        assert excinfo.value.path == str(path)
        assert f"{path}:3:" in str(excinfo.value)

    def test_non_integer_id_located(self, tmp_path):
        from repro.graph import GraphFormatError

        path = tmp_path / "g.txt"
        path.write_text("0 1\nfoo bar\n")
        with pytest.raises(GraphFormatError, match="non-integer"):
            read_edge_list(path)

    def test_is_a_value_error(self, tmp_path):
        # Historical call sites catch ValueError; the subclass keeps them.
        path = tmp_path / "g.txt"
        path.write_text("oops\n")
        with pytest.raises(ValueError):
            read_edge_list(path)

    def test_strict_rejects_self_loop(self, tmp_path):
        from repro.graph import GraphFormatError

        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 1\n")
        with pytest.raises(GraphFormatError, match="self-loop"):
            read_edge_list(path, strict=True)
        # Non-strict silently normalizes it away.
        assert read_edge_list(path).num_edges == 1

    def test_strict_rejects_duplicate_edge(self, tmp_path):
        from repro.graph import GraphFormatError

        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 0\n")
        with pytest.raises(GraphFormatError, match="duplicate"):
            read_edge_list(path, strict=True)
        assert read_edge_list(path).num_edges == 1

    def test_truncated_binary_header(self, tmp_path):
        from repro.graph import GraphFormatError

        path = tmp_path / "g.bin"
        path.write_bytes(b"PPSCANG1" + b"\x01")
        with pytest.raises(GraphFormatError, match="truncated header"):
            read_csr_binary(path)

    def test_truncated_binary_arrays(self, sample, tmp_path):
        from repro.graph import GraphFormatError

        path = tmp_path / "g.bin"
        write_csr_binary(sample, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 16])
        with pytest.raises(GraphFormatError, match="truncated destination"):
            read_csr_binary(path)

    def test_corrupt_binary_offsets(self, sample, tmp_path):
        from repro.graph import GraphFormatError

        path = tmp_path / "g.bin"
        write_csr_binary(sample, path)
        raw = bytearray(path.read_bytes())
        # Offsets start right after the 8-byte magic + 16-byte header;
        # scribble a huge value into offsets[1].
        offset_base = 8 + 16
        raw[offset_base + 8 : offset_base + 16] = np.int64(1 << 40).tobytes()
        path.write_bytes(bytes(raw))
        with pytest.raises(GraphFormatError):
            read_csr_binary(path)

    def test_strict_load_graph_dispatch(self, tmp_path):
        from repro.graph import GraphFormatError

        path = tmp_path / "g.txt"
        path.write_text("0 0\n")
        with pytest.raises(GraphFormatError):
            load_graph(path, strict=True)


class TestValidateGraph:
    def test_clean_graph_no_problems(self, sample):
        from repro.core import validate_graph

        assert validate_graph(sample) == []

    def test_asymmetric_arcs_detected(self):
        from repro.core import validate_graph
        from repro.graph import CSRGraph

        graph = CSRGraph(
            offsets=np.array([0, 1, 1], dtype=np.int64),
            dst=np.array([1], dtype=np.int64),
        )
        problems = validate_graph(graph)
        assert any("symmetric" in p for p in problems)

    def test_self_loop_detected(self):
        from repro.core import validate_graph
        from repro.graph import CSRGraph

        graph = CSRGraph(
            offsets=np.array([0, 1, 2], dtype=np.int64),
            dst=np.array([0, 1], dtype=np.int64),
        )
        problems = validate_graph(graph)
        assert any("self-loop" in p for p in problems)

    def test_unsorted_adjacency_detected(self):
        from repro.core import validate_graph
        from repro.graph import CSRGraph

        graph = CSRGraph(
            offsets=np.array([0, 2, 3, 4], dtype=np.int64),
            dst=np.array([2, 1, 0, 0], dtype=np.int64),
        )
        problems = validate_graph(graph)
        assert any("sorted" in p for p in problems)
