"""LFR-lite generator and the block-SIMD (shuffle) kernel."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import fast_structural_clustering
from repro.graph.generators import lfr_graph
from repro.intersect import OpCounter, merge_count, simd_shuffle_count
from repro.quality import adjusted_rand_index, primary_labels
from repro.types import ScanParams

sorted_arrays = st.lists(
    st.integers(min_value=0, max_value=300), max_size=80
).map(lambda xs: sorted(set(xs)))


class TestShuffleKernel:
    @given(sorted_arrays, sorted_arrays, st.sampled_from([2, 4, 8, 16]))
    def test_matches_set_semantics(self, a, b, lanes):
        assert simd_shuffle_count(a, b, lanes) == len(set(a) & set(b))

    def test_counts_vector_ops(self):
        a = list(range(0, 64, 2))
        b = list(range(0, 64, 3))
        counter = OpCounter()
        simd_shuffle_count(a, b, lanes=4, counter=counter)
        assert counter.vector_ops > 0

    def test_block_efficiency_vs_merge(self):
        """Priced on the machine model, block compares beat the branchy
        merge on long arrays (each vector round is much cheaper than a
        mispredicting scalar comparison)."""
        from repro.metrics import TaskCost
        from repro.parallel import KNL_SERVER

        a = list(range(0, 2000, 2))
        b = list(range(0, 2000, 3))
        shuffle = OpCounter()
        simd_shuffle_count(a, b, lanes=8, counter=shuffle)
        merge = OpCounter()
        merge_count(a, b, merge)
        shuffle_cycles = KNL_SERVER.task_cycles(
            TaskCost(
                vector_ops=shuffle.vector_ops, scalar_cmp=shuffle.scalar_cmp
            )
        )
        merge_cycles = KNL_SERVER.task_cycles(
            TaskCost(scalar_cmp=merge.scalar_cmp)
        )
        assert shuffle_cycles < merge_cycles / 2

    def test_lanes_validation(self):
        with pytest.raises(ValueError):
            simd_shuffle_count([1], [1], lanes=1)

    def test_no_early_termination(self):
        """Same cost regardless of how decidable the predicate is."""
        a = list(range(100))
        c1, c2 = OpCounter(), OpCounter()
        simd_shuffle_count(a, a, lanes=4, counter=c1)
        simd_shuffle_count(a, a, lanes=4, counter=c2)
        assert c1.vector_ops == c2.vector_ops


class TestLFR:
    def test_valid_and_deterministic(self):
        g1, l1 = lfr_graph(400, seed=5)
        g2, l2 = lfr_graph(400, seed=5)
        g1.validate()
        assert np.array_equal(g1.dst, g2.dst)
        assert np.array_equal(l1, l2)

    def test_labels_cover_all_vertices(self):
        g, labels = lfr_graph(300, seed=1)
        assert labels.shape == (300,)
        assert labels.min() >= 0

    def test_mixing_controls_intra_fraction(self):
        def intra_fraction(mu):
            g, labels = lfr_graph(600, avg_degree=12, mu_mix=mu, seed=2)
            edges = g.edge_list()
            if len(edges) == 0:
                return 1.0
            same = np.count_nonzero(labels[edges[:, 0]] == labels[edges[:, 1]])
            return same / len(edges)

        assert intra_fraction(0.0) == 1.0
        assert intra_fraction(0.05) > intra_fraction(0.4)

    def test_community_sizes_skewed(self):
        _, labels = lfr_graph(800, community_gamma=2.0, seed=3)
        sizes = np.bincount(labels)
        sizes = sizes[sizes > 0]
        assert sizes.max() > 2 * sizes.min()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            lfr_graph(100, mu_mix=1.5)
        with pytest.raises(ValueError):
            lfr_graph(100, min_community=1)

    def test_scan_recovers_low_mixing_communities(self):
        g, truth = lfr_graph(
            500, avg_degree=16, mu_mix=0.03, min_community=25, seed=7
        )
        result = fast_structural_clustering(g, ScanParams(0.3, 3))
        labels = primary_labels(result)
        mask = labels >= 0
        if mask.sum() > 100:
            ari = adjusted_rand_index(
                truth[mask].tolist(), labels[mask].tolist()
            )
            assert ari > 0.6
