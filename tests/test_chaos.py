"""Fault-tolerant execution: supervisor recovery paths + chaos injection."""

import json

import pytest

from repro.core import assert_same_clustering, ppscan
from repro.graph.generators import erdos_renyi
from repro.metrics import TaskCost
from repro.obs import Tracer, use_tracer
from repro.parallel import (
    Fault,
    FaultKind,
    FaultPlan,
    FaultTolerancePolicy,
    PoisonTaskError,
    ProcessBackend,
    RetryBudgetExhaustedError,
    SerialBackend,
    arc_range_cost_model,
)
from repro.types import ScanParams

TASKS = [(i * 4, (i + 1) * 4) for i in range(16)]
EXPECT = {i: i * i for i in range(64)}


def make_phase():
    acc = {}

    def run_task(beg, end):
        return [(i, i * i) for i in range(beg, end)], TaskCost(arcs=end - beg)

    def commit(writes):
        for key, value in writes:
            assert key not in acc  # exactly-once commit per vertex
            acc[key] = value

    return acc, run_task, commit


def event_kinds(backend):
    return [e.kind for e in backend.recovery_events]


class TestFaultPlan:
    def test_seeded_plan_is_deterministic(self):
        a = FaultPlan.from_seed(42, tasks=16, kills=2, errors=1)
        b = FaultPlan.from_seed(42, tasks=16, kills=2, errors=1)
        assert a == b
        assert len(a.faults) == 3

    def test_attempt_matching(self):
        fault = Fault(FaultKind.KILL, task=3)  # attempt=0 default
        assert fault.matches(0, 3, 0, 1)
        assert not fault.matches(0, 3, 1, 1)  # retry goes through
        poison = Fault(FaultKind.KILL, task=3, attempt=None)
        assert poison.matches(0, 3, 5, 1)

    def test_roundtrip_json(self, tmp_path):
        plan = FaultPlan.from_seed(7, tasks=8, kills=1, poison=1)
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan
        # the file is valid JSON with explicit fault rules
        data = json.loads(path.read_text())
        assert len(data["faults"]) == 2

    def test_parse_spec_and_path(self, tmp_path):
        plan = FaultPlan.parse("seed=42,tasks=16,kill=2")
        assert plan == FaultPlan.from_seed(42, tasks=16, kills=2)
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.parse(str(path)) == plan

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("not a spec")

    def test_too_many_faults_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.from_seed(0, tasks=2, kills=3)


class TestSupervisorRecovery:
    def test_no_faults_matches_serial(self):
        acc, run_task, commit = make_phase()
        ProcessBackend(4, supervised=True).run_phase(TASKS, run_task, commit)
        assert acc == EXPECT

    def test_worker_kills_recovered(self):
        acc, run_task, commit = make_phase()
        backend = ProcessBackend(
            4, chaos=FaultPlan.from_seed(42, tasks=16, kills=2)
        )
        backend.run_phase(TASKS, run_task, commit)
        assert acc == EXPECT
        kinds = event_kinds(backend)
        assert kinds.count("crash") == 2
        assert "retry" in kinds and "respawn" in kinds

    def test_poison_task_quarantined(self):
        acc, run_task, commit = make_phase()
        backend = ProcessBackend(4, chaos=FaultPlan.poison(5))
        with pytest.raises(PoisonTaskError) as excinfo:
            backend.run_phase(TASKS, run_task, commit)
        report = excinfo.value.report
        assert report.task == 5
        assert report.task_range == (20, 24)
        assert report.workers_killed == 3  # default poison_threshold
        assert len(report.failures) == 3
        assert "quarantine" in event_kinds(backend)

    def test_pool_collapse_degrades_to_serial(self):
        acc, run_task, commit = make_phase()
        plan = FaultPlan(
            faults=tuple(
                Fault(FaultKind.KILL, worker=w, task=None) for w in range(4)
            )
        )
        policy = FaultTolerancePolicy(
            max_retries=50, max_respawns=0, poison_threshold=100
        )
        backend = ProcessBackend(4, policy=policy, chaos=plan)
        backend.run_phase(TASKS, run_task, commit)
        assert acc == EXPECT
        assert "degrade" in event_kinds(backend)

    def test_error_fault_retried(self):
        acc, run_task, commit = make_phase()
        backend = ProcessBackend(
            4, chaos=FaultPlan.from_seed(7, tasks=16, errors=3)
        )
        backend.run_phase(TASKS, run_task, commit)
        assert acc == EXPECT
        kinds = event_kinds(backend)
        assert kinds.count("task_error") == 3
        # errors don't kill the process: no respawns needed
        assert "respawn" not in kinds

    def test_retry_budget_exhausted(self):
        acc, run_task, commit = make_phase()
        plan = FaultPlan(faults=(Fault(FaultKind.ERROR, task=3, attempt=None),))
        backend = ProcessBackend(
            4, policy=FaultTolerancePolicy(max_retries=2), chaos=plan
        )
        with pytest.raises(RetryBudgetExhaustedError) as excinfo:
            backend.run_phase(TASKS, run_task, commit)
        assert len(excinfo.value.failures) == 3  # 1 try + 2 retries

    def test_hang_caught_by_task_deadline(self):
        acc, run_task, commit = make_phase()
        plan = FaultPlan(faults=(Fault(FaultKind.HANG, task=2, seconds=30.0),))
        backend = ProcessBackend(
            4, policy=FaultTolerancePolicy(task_timeout=0.5), chaos=plan
        )
        backend.run_phase(TASKS, run_task, commit)
        assert acc == EXPECT
        assert "timeout" in event_kinds(backend)

    def test_stall_caught_by_heartbeat_gap(self):
        acc, run_task, commit = make_phase()
        plan = FaultPlan(faults=(Fault(FaultKind.STALL, task=9),))
        policy = FaultTolerancePolicy(
            heartbeat_interval=0.05, heartbeat_timeout=0.5
        )
        backend = ProcessBackend(4, policy=policy, chaos=plan)
        backend.run_phase(TASKS, run_task, commit)
        assert acc == EXPECT
        assert "heartbeat_gap" in event_kinds(backend)

    def test_plain_backend_not_supervised(self):
        assert not ProcessBackend(2).supervised
        assert ProcessBackend(2, chaos=FaultPlan.poison(0)).supervised
        assert ProcessBackend(2, policy=FaultTolerancePolicy()).supervised


class TestEndToEndClustering:
    """Chaos-injected parallel runs stay bit-identical to serial runs."""

    @pytest.fixture(scope="class")
    def graph(self):
        return erdos_renyi(300, 2400, seed=5)

    @pytest.fixture(scope="class")
    def params(self):
        return ScanParams(eps=0.3, mu=2)

    def test_kills_mid_phase_identical_labels(self, graph, params):
        serial = ppscan(graph, params, backend=SerialBackend())
        backend = ProcessBackend(
            4,
            chaos=FaultPlan.from_seed(42, tasks=16, kills=2),
            cost_model=arc_range_cost_model(graph.offsets),
        )
        chaotic = ppscan(graph, params, backend=backend)
        assert_same_clustering(serial, chaotic)
        assert any(e.kind == "crash" for e in backend.recovery_events)

    def test_recovery_events_reach_trace(self, graph, params):
        backend = ProcessBackend(
            2, chaos=FaultPlan.from_seed(42, tasks=16, kills=1)
        )
        tracer = Tracer()
        with use_tracer(tracer):
            ppscan(graph, params, backend=backend)
        metrics = tracer.metrics.as_dict()
        assert metrics.get("supervisor.crash", 0) >= 1
        assert metrics.get("supervisor.retry", 0) >= 1
        kinds = {s.name for s in tracer.sorted_spans()}
        assert "recovery:crash" in kinds and "recovery:retry" in kinds

    def test_fault_error_locates_stage(self, graph, params):
        backend = ProcessBackend(2, chaos=FaultPlan.poison(0))
        with pytest.raises(PoisonTaskError) as excinfo:
            ppscan(graph, params, backend=backend)
        assert excinfo.value.algorithm == "ppscan"
        assert excinfo.value.stage is not None
        assert "stage" in str(excinfo.value)
