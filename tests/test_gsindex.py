"""GS*-Index: construction, exact queries, similarity ordering."""

import numpy as np
import pytest

from repro.core import GSIndex, brute_force_scan, ppscan
from repro.types import CORE as CORE_ROLE
from repro.graph import complete_graph, from_edges, star_graph
from repro.graph.generators import chung_lu, erdos_renyi, powerlaw_weights
from repro.types import ScanParams


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(70, 320, seed=13)


@pytest.fixture(scope="module")
def index(graph):
    return GSIndex(graph)


class TestConstruction:
    def test_one_intersection_per_edge(self, graph, index):
        assert (
            index.construction_record.compsim_invocations == graph.num_edges
        )

    def test_construction_record_shape(self, index):
        record = index.construction_record
        assert record.stages[0].name == "index construction"
        assert record.wall_seconds > 0

    def test_neighbor_order_descending(self, graph, index):
        for u in range(graph.num_vertices):
            order = index._neighbor_order[u]
            sims = [
                index._sim_num[a] / index._sim_den[a] for a in order
            ]
            assert sims == sorted(sims, reverse=True)

    def test_edge_similarity_value(self):
        g = complete_graph(3)
        index = GSIndex(g)
        # Triangle: sigma = 3 / 3 = 1.
        assert index.edge_similarity(0, 1) == pytest.approx(1.0)


class TestQueries:
    @pytest.mark.parametrize("eps", [0.2, 0.45, 0.7, 1.0])
    @pytest.mark.parametrize("mu", [1, 2, 4])
    def test_exact_vs_brute_force(self, graph, index, eps, mu):
        params = ScanParams(eps, mu)
        reference = brute_force_scan(graph, params)
        result = index.query(params)
        assert reference.same_clustering(result)

    def test_one_index_many_params(self, index, graph):
        """The index answers arbitrary (eps, mu) without rebuilding."""
        for eps in (0.3, 0.6, 0.9):
            for mu in (1, 3):
                params = ScanParams(eps, mu)
                assert index.query(params).same_clustering(
                    ppscan(graph, params)
                )

    def test_is_core_predicate(self, graph, index):
        params = ScanParams(0.4, 2)
        result = ppscan(graph, params)
        from repro.types import CORE

        for u in range(graph.num_vertices):
            assert index.is_core(u, params) == (result.roles[u] == CORE)

    def test_boundary_exactness(self):
        """Query at an exact similarity boundary matches the online
        algorithms (the reason similarities are stored as rationals)."""
        # Triangle + pendant: sigma values hit exact rational boundaries.
        g = from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        index = GSIndex(g)
        for eps in (0.5, 0.75, 1.0):
            for mu in (1, 2):
                params = ScanParams(eps, mu)
                assert index.query(params).same_clustering(
                    brute_force_scan(g, params)
                )

    def test_star_graph(self):
        g = star_graph(6)
        index = GSIndex(g)
        params = ScanParams(0.9, 2)
        assert index.query(params).num_clusters == 0

    def test_query_record(self, index):
        result = index.query(ScanParams(0.4, 2))
        assert result.record.stages[0].name == "index query"
        assert result.record.total().arcs > 0

    def test_powerlaw_graph(self):
        g = chung_lu(powerlaw_weights(150, 2.3), 900, seed=3)
        index = GSIndex(g)
        params = ScanParams(0.35, 3)
        assert index.query(params).same_clustering(ppscan(g, params))


class TestPersistence:
    def test_roundtrip_queries(self, graph, index, tmp_path):
        path = tmp_path / "index.npz"
        index.save(path)
        loaded = GSIndex.load(path, graph)
        for eps in (0.3, 0.7):
            params = ScanParams(eps, 2)
            assert loaded.query(params).same_clustering(index.query(params))
            assert loaded.cores(params) == index.cores(params)

    def test_fingerprint_mismatch_rejected(self, graph, index, tmp_path):
        path = tmp_path / "index.npz"
        index.save(path)
        other = erdos_renyi(graph.num_vertices, graph.num_edges, seed=999)
        with pytest.raises(ValueError, match="fingerprint"):
            GSIndex.load(path, other)

    def test_loaded_index_has_empty_construction_record(
        self, graph, index, tmp_path
    ):
        path = tmp_path / "index.npz"
        index.save(path)
        loaded = GSIndex.load(path, graph)
        assert loaded.construction_record.stages == []


class TestCoreOrders:
    @pytest.mark.parametrize("eps", [0.2, 0.5, 0.8])
    @pytest.mark.parametrize("mu", [1, 2, 4])
    def test_cores_match_roles(self, graph, index, eps, mu):
        params = ScanParams(eps, mu)
        expected = sorted(
            np.flatnonzero(ppscan(graph, params).roles == CORE_ROLE).tolist()
        )
        assert index.cores(params) == expected

    def test_large_mu_fallback_path(self, graph, index):
        """µ beyond the materialized core orders uses the per-vertex
        neighbor-order check and still agrees."""
        params = ScanParams(0.2, 100)
        expected = sorted(
            np.flatnonzero(ppscan(graph, params).roles == CORE_ROLE).tolist()
        )
        assert index.cores(params) == expected

    def test_core_orders_descending(self, index):
        for k in range(1, len(index._core_orders)):
            order = index._core_orders[k]
            keys = []
            for u in order:
                arc = index._neighbor_order[u][k - 1]
                keys.append(index._sim_num[arc] / index._sim_den[arc])
            assert keys == sorted(keys, reverse=True)
