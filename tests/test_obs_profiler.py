"""Sampling flight recorder: attribution, memory accounting, overhead."""

import time

import pytest

from repro.core.ppscan import ppscan
from repro.graph.generators import erdos_renyi, real_world_standin
from repro.obs import SpanProfiler, Tracer, profile_tracer, use_tracer
from repro.types import ScanParams


class TestSampling:
    def test_samples_attribute_self_and_cumulative(self):
        tracer = Tracer()
        with SpanProfiler(tracer, interval=0.002) as prof:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    time.sleep(0.08)
        out = prof.as_dict()
        assert out["samples"] > 0
        spans = out["spans"]
        assert spans["inner"]["self_samples"] > 0
        # Every inner sample also credits the enclosing span.
        assert (
            spans["outer"]["cum_samples"] >= spans["inner"]["self_samples"]
        )
        assert spans["inner"]["self_seconds"] == pytest.approx(
            spans["inner"]["self_samples"] * 0.002
        )

    def test_idle_samples_counted_when_no_span_open(self):
        tracer = Tracer()
        with SpanProfiler(tracer, interval=0.002) as prof:
            time.sleep(0.05)
        assert prof.idle_samples > 0
        assert prof.as_dict()["spans"] == {}

    def test_recursive_spans_credited_once_per_sample(self):
        tracer = Tracer()
        with SpanProfiler(tracer, interval=0.002) as prof:
            with tracer.span("deep"), tracer.span("deep"):
                time.sleep(0.05)
        spans = prof.as_dict()["spans"]
        # cum counts samples, not stack occurrences: cum == self here.
        assert spans["deep"]["cum_samples"] == spans["deep"]["self_samples"]

    def test_hotspots_ranked_by_self_time(self):
        tracer = Tracer()
        with SpanProfiler(tracer, interval=0.002) as prof:
            with tracer.span("slow"):
                time.sleep(0.06)
            with tracer.span("fast"):
                time.sleep(0.01)
        hot = prof.hotspots()
        assert hot and hot[0][0] == "slow"

    def test_real_run_yields_phase_hotspots(self):
        graph = erdos_renyi(400, 4000, seed=7)
        tracer = Tracer()
        with use_tracer(tracer), profile_tracer(
            tracer, interval=0.001
        ) as prof:
            ppscan(graph, ScanParams(eps=0.4, mu=3))
        # Span *names* must come from the traced phases even if the run
        # was too fast for many samples.
        for name in prof.as_dict()["spans"]:
            assert any(s.name == name for s in tracer.spans)

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            SpanProfiler(Tracer(), interval=0.0)

    def test_double_start_rejected(self):
        prof = SpanProfiler(Tracer()).start()
        try:
            with pytest.raises(RuntimeError):
                prof.start()
        finally:
            prof.stop()


class TestMemoryAccounting:
    def test_phase_deltas_recorded(self):
        tracer = Tracer()
        with SpanProfiler(tracer, interval=0.05, memory=True) as prof:
            with tracer.span("alloc phase"):
                blob = [bytearray(256 * 1024) for _ in range(4)]
            del blob
        mem = prof.as_dict()["memory"]
        entry = mem["alloc phase"]
        assert entry["entries"] == 1
        # ~1MB allocated inside the span; the within-span peak saw it.
        assert entry["peak_kb"] > 512

    def test_nested_spans_only_top_levels_accounted(self):
        tracer = Tracer()
        with SpanProfiler(tracer, interval=0.05, memory=True) as prof:
            with tracer.span("outer"):
                with tracer.span("mid"):
                    with tracer.span("deep"):
                        pass
        mem = prof.as_dict().get("memory", {})
        assert "outer" in mem and "mid" in mem
        assert "deep" not in mem  # depth 2: below the accounting cutoff

    def test_observer_removed_after_stop(self):
        tracer = Tracer()
        with SpanProfiler(tracer, memory=True):
            pass
        assert tracer._observers == []

    def test_no_observer_without_memory_flag(self):
        tracer = Tracer()
        with SpanProfiler(tracer):
            assert tracer._observers == []


class TestOverhead:
    def test_sampling_overhead_within_five_percent_of_smoke(self):
        """The acceptance budget: ≤ 5% wall on the smoke workload.

        Same graph family/parameters as ``run_smoke`` (scale reduced to
        keep the suite fast), interleaved best-of-N so scheduler noise
        cancels; best-vs-best is the same statistic the smoke benchmark
        itself gates on.
        """
        graph = real_world_standin("livejournal", scale=0.4)
        params = ScanParams(eps=0.4, mu=5)
        ppscan(graph, params)  # warm caches outside the measurement

        plain = float("inf")
        profiled = float("inf")
        for _ in range(6):
            tracer = Tracer()
            with use_tracer(tracer):
                t0 = time.perf_counter()
                ppscan(graph, params)
                plain = min(plain, time.perf_counter() - t0)
            tracer = Tracer()
            with use_tracer(tracer), SpanProfiler(tracer):
                t0 = time.perf_counter()
                ppscan(graph, params)
                profiled = min(profiled, time.perf_counter() - t0)
        # 2ms absolute floor keeps sub-100ms runs from failing on a
        # single scheduler hiccup; the relative band is the real gate.
        assert profiled <= plain * 1.05 + 0.002, (
            f"profiler overhead {profiled / plain - 1:.1%} "
            f"(plain {plain * 1e3:.1f}ms, profiled {profiled * 1e3:.1f}ms)"
        )
