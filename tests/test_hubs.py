"""Parallel hub/outlier classification phase."""

import numpy as np
import pytest

from repro.core import classify_peripherals, ppscan
from repro.graph import from_edges
from repro.graph.generators import chung_lu, erdos_renyi, powerlaw_weights
from repro.parallel import ProcessBackend
from repro.types import CORE, HUB, NONCORE, OUTLIER, ScanParams


@pytest.fixture(scope="module")
def clustered():
    g = chung_lu(powerlaw_weights(250, 2.3), 1500, seed=19)
    result = ppscan(g, ScanParams(0.4, 3))
    return g, result


class TestClassifyPeripherals:
    def test_matches_sequential_classify(self, clustered):
        g, result = clustered
        parallel, _ = classify_peripherals(g, result)
        assert np.array_equal(parallel, result.classify(g))

    def test_process_backend_identical(self, clustered):
        g, result = clustered
        serial, _ = classify_peripherals(g, result)
        parallel, _ = classify_peripherals(
            g, result, backend=ProcessBackend(workers=2)
        )
        assert np.array_equal(serial, parallel)

    def test_record_has_tasks(self, clustered):
        g, result = clustered
        _, record = classify_peripherals(g, result)
        stage = record.stages[0]
        assert stage.name == "peripheral classification"
        assert stage.num_tasks >= 1
        assert stage.total().arcs >= 0

    def test_work_linear_in_arcs(self, clustered):
        """O(|E| + |V|): arcs scanned never exceed the arc count."""
        g, result = clustered
        _, record = classify_peripherals(g, result)
        assert record.total().arcs <= g.num_arcs

    def test_known_hub(self):
        g = from_edges(
            [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (6, 0), (6, 3)]
        )
        params = ScanParams(0.6, 2)
        result = ppscan(g, params)
        out, _ = classify_peripherals(g, result)
        if result.num_clusters == 2 and not result.membership()[6]:
            assert out[6] == HUB

    def test_graph_mismatch_rejected(self, clustered):
        g, result = clustered
        other = erdos_renyi(10, 20, seed=0)
        with pytest.raises(ValueError):
            classify_peripherals(other, result)

    def test_all_labels_valid(self, clustered):
        g, result = clustered
        out, _ = classify_peripherals(g, result)
        assert set(np.unique(out)).issubset({CORE, NONCORE, HUB, OUTLIER})
