"""Dynamic graph and incrementally-maintained GS*-Index."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import DynamicGSIndex, GSIndex, ppscan
from repro.graph import DynamicGraph, from_edges
from repro.graph.generators import erdos_renyi
from repro.types import ScanParams


class TestDynamicGraph:
    def test_insert_and_query(self):
        g = DynamicGraph(4)
        assert g.insert_edge(0, 1)
        assert not g.insert_edge(1, 0)  # duplicate
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.num_edges == 1
        assert g.degree(0) == 1

    def test_remove(self):
        g = DynamicGraph(3)
        g.insert_edge(0, 1)
        assert g.remove_edge(1, 0)
        assert not g.remove_edge(0, 1)
        assert g.num_edges == 0

    def test_self_loop_rejected(self):
        g = DynamicGraph(3)
        with pytest.raises(ValueError):
            g.insert_edge(1, 1)

    def test_out_of_range_rejected(self):
        g = DynamicGraph(3)
        with pytest.raises(IndexError):
            g.insert_edge(0, 7)

    def test_add_vertex(self):
        g = DynamicGraph(2)
        vid = g.add_vertex()
        assert vid == 2
        g.insert_edge(0, 2)
        assert g.degree(2) == 1

    def test_neighbors_stay_sorted(self):
        g = DynamicGraph(6)
        for v in (4, 1, 5, 2):
            g.insert_edge(0, v)
        assert g.neighbors(0) == [1, 2, 4, 5]

    def test_snapshot_roundtrip(self):
        csr = erdos_renyi(30, 90, seed=4)
        dyn = DynamicGraph.from_csr(csr)
        snap = dyn.snapshot()
        assert np.array_equal(snap.offsets, csr.offsets)
        assert np.array_equal(snap.dst, csr.dst)

    def test_snapshot_after_mutation(self):
        dyn = DynamicGraph(4)
        dyn.insert_edge(0, 1)
        dyn.insert_edge(2, 3)
        dyn.remove_edge(0, 1)
        snap = dyn.snapshot()
        assert snap.num_edges == 1
        snap.validate()

    def test_snapshot_empty_graph(self):
        snap = DynamicGraph(0).snapshot()
        snap.validate()
        assert snap.num_vertices == 0 and snap.num_edges == 0

    def test_snapshot_all_isolated_vertices(self):
        # Regression guard: the old pair-list snapshot path reshaped an
        # empty float array when no vertex had any edges.
        snap = DynamicGraph(5).snapshot()
        snap.validate()
        assert snap.num_vertices == 5 and snap.num_edges == 0
        assert all(snap.degree(u) == 0 for u in range(5))

    def test_snapshot_after_draining_all_edges(self):
        dyn = DynamicGraph(4)
        dyn.insert_edge(0, 1)
        dyn.insert_edge(2, 3)
        dyn.remove_edge(0, 1)
        dyn.remove_edge(2, 3)
        snap = dyn.snapshot()
        snap.validate()
        assert snap.num_edges == 0

    def test_snapshot_matches_edge_array_builder(self):
        from repro.graph.builders import from_edge_array

        dyn = DynamicGraph.from_csr(erdos_renyi(25, 60, seed=11))
        dyn.insert_edge(0, 24)
        dyn.remove_edge(*map(int, dyn.snapshot().edge_list()[0]))
        snap = dyn.snapshot()
        rebuilt = from_edge_array(snap.edge_list(), snap.num_vertices)
        assert np.array_equal(snap.offsets, rebuilt.offsets)
        assert np.array_equal(snap.dst, rebuilt.dst)

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.lists(
            st.tuples(
                st.booleans(),
                st.integers(0, 11),
                st.integers(0, 11),
            ),
            max_size=40,
        )
    )
    def test_snapshot_invariants_under_random_edits(self, updates):
        dyn = DynamicGraph(12)
        edges: set[tuple[int, int]] = set()
        for insert, u, v in updates:
            if u == v:
                continue
            pair = (min(u, v), max(u, v))
            if insert:
                assert dyn.insert_edge(u, v) == (pair not in edges)
                edges.add(pair)
            else:
                assert dyn.remove_edge(u, v) == (pair in edges)
                edges.discard(pair)
        assert dyn.num_edges == len(edges)
        assert sum(dyn.degree(u) for u in range(12)) == 2 * len(edges)
        for u in range(12):
            nbrs = dyn.neighbors(u)
            assert nbrs == sorted(set(nbrs))
        snap = dyn.snapshot()
        snap.validate()
        assert snap.num_edges == len(edges)
        got = {tuple(sorted(map(int, e))) for e in snap.edge_list()}
        assert got == edges


class TestDynamicIndex:
    def test_fresh_index_matches_static(self):
        csr = erdos_renyi(40, 150, seed=5)
        dyn_idx = DynamicGSIndex(DynamicGraph.from_csr(csr))
        static_idx = GSIndex(csr)
        for eps in (0.3, 0.6):
            params = ScanParams(eps, 2)
            assert dyn_idx.query(params).same_clustering(
                static_idx.query(params)
            )

    def test_insertion_updates_exactly(self):
        csr = erdos_renyi(30, 80, seed=6)
        dyn = DynamicGraph.from_csr(csr)
        idx = DynamicGSIndex(dyn)
        inserted = 0
        for u in range(0, 30, 3):
            v = (u + 7) % 30
            if u != v and idx.insert_edge(u, v):
                inserted += 1
        assert inserted > 0
        params = ScanParams(0.4, 2)
        assert idx.query(params).same_clustering(
            ppscan(dyn.snapshot(), params)
        )

    def test_deletion_updates_exactly(self):
        csr = erdos_renyi(30, 120, seed=7)
        dyn = DynamicGraph.from_csr(csr)
        idx = DynamicGSIndex(dyn)
        removed = 0
        for u, v in csr.edge_list()[::4]:
            if idx.remove_edge(int(u), int(v)):
                removed += 1
        assert removed > 0
        params = ScanParams(0.4, 2)
        assert idx.query(params).same_clustering(
            ppscan(dyn.snapshot(), params)
        )

    def test_insert_then_remove_is_identity(self):
        csr = erdos_renyi(25, 70, seed=8)
        dyn = DynamicGraph.from_csr(csr)
        idx = DynamicGSIndex(dyn)
        params = ScanParams(0.5, 2)
        before = idx.query(params)
        assert idx.insert_edge(0, 24) or True
        idx.remove_edge(0, 24)
        assert idx.query(params).same_clustering(before)

    def test_remove_absent_edge_in_range_returns_false(self):
        idx = DynamicGSIndex(DynamicGraph(4))
        assert idx.insert_edge(0, 1)
        assert not idx.remove_edge(2, 3)
        assert not idx.insert_edge(0, 1)

    def test_insert_and_remove_validate_identically(self):
        # remove_edge must reject bad endpoints exactly like
        # insert_edge, not silently report the edge as absent.
        idx = DynamicGSIndex(DynamicGraph(3))
        for bad in ((0, 7), (-1, 2), (5, 9)):
            with pytest.raises(IndexError):
                idx.insert_edge(*bad)
            with pytest.raises(IndexError):
                idx.remove_edge(*bad)
        with pytest.raises(ValueError):
            idx.insert_edge(1, 1)
        with pytest.raises(ValueError):
            idx.remove_edge(1, 1)

    def test_rejected_remove_leaves_index_intact(self):
        csr = erdos_renyi(20, 50, seed=10)
        idx = DynamicGSIndex(DynamicGraph.from_csr(csr))
        params = ScanParams(0.5, 2)
        before = idx.query(params)
        with pytest.raises(IndexError):
            idx.remove_edge(0, 99)
        assert idx.query(params).same_clustering(before)

    def test_maintenance_is_local(self):
        """Updating one edge costs O(d(u) + d(v)), not O(m)."""
        csr = erdos_renyi(400, 1600, seed=9)
        dyn = DynamicGraph.from_csr(csr)
        idx = DynamicGSIndex(dyn)
        idx.maintenance_ops = 0
        u, v = 0, 399
        if dyn.has_edge(u, v):
            idx.remove_edge(u, v)
            idx.maintenance_ops = 0
        idx.insert_edge(u, v)
        local = dyn.degree(u) + dyn.degree(v)
        assert idx.maintenance_ops <= 4 * local + 8

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.lists(
            st.tuples(
                st.booleans(),
                st.integers(0, 19),
                st.integers(0, 19),
            ),
            max_size=30,
        ),
    )
    def test_random_update_sequences(self, seed, updates):
        csr = erdos_renyi(20, 40, seed=seed)
        dyn = DynamicGraph.from_csr(csr)
        idx = DynamicGSIndex(dyn)
        for insert, u, v in updates:
            if u == v:
                continue
            if insert:
                idx.insert_edge(u, v)
            else:
                idx.remove_edge(u, v)
        params = ScanParams(0.5, 2)
        assert idx.query(params).same_clustering(
            ppscan(dyn.snapshot(), params)
        )
