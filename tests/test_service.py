"""The always-on clustering service: HTTP layer, registry, server.

Everything runs in-process over real TCP sockets via ``asyncio.run``
(no external HTTP client, no pytest-asyncio): each test stands up a
:class:`~repro.service.ClusteringService` on an ephemeral port, drives
it with a minimal reader/writer client, and tears it down.

The deterministic concurrency tests block the service's single-thread
executor on a :class:`threading.Event` so coalescing (identical
in-flight keys share one future) and admission control (429 +
``Retry-After`` past the heavy-query limit) are observed by
construction, not by timing luck.
"""

from __future__ import annotations

import asyncio
import json
import threading

import numpy as np
import pytest

from repro import api
from repro.cache import graph_fingerprint
from repro.graph.generators import erdos_renyi
from repro.service import ClusteringService, GraphRegistry
from repro.service.http import (
    HTTPError,
    Request,
    read_request,
    response_bytes,
)
from repro.types import ScanParams


# ---------------------------------------------------------------------------
# HTTP layer
# ---------------------------------------------------------------------------


def _parse(raw: bytes, **kwargs):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(go())


class TestHTTPLayer:
    def test_parses_request(self):
        req = _parse(
            b"GET /graphs/ab/cluster?eps=0.5&mu=2 HTTP/1.1\r\n"
            b"Host: x\r\nX-Thing: 1\r\n\r\n"
        )
        assert req.method == "GET"
        assert req.path == "/graphs/ab/cluster"
        assert req.path_parts == ["graphs", "ab", "cluster"]
        assert req.query == {"eps": "0.5", "mu": "2"}
        assert req.headers["x-thing"] == "1"
        assert req.keep_alive

    def test_body_by_content_length(self):
        req = _parse(
            b"POST /graphs HTTP/1.1\r\nContent-Length: 7\r\n\r\n"
            b'{"a":1}'
        )
        assert req.body == b'{"a":1}'
        assert req.json() == {"a": 1}

    def test_clean_eof_is_none(self):
        assert _parse(b"") is None

    def test_malformed_request_line(self):
        with pytest.raises(HTTPError) as err:
            _parse(b"BROKEN\r\n\r\n")
        assert err.value.status == 400

    def test_body_over_limit_is_413(self):
        with pytest.raises(HTTPError) as err:
            _parse(
                b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100,
                max_body=10,
            )
        assert err.value.status == 413

    def test_truncated_body_is_400(self):
        with pytest.raises(HTTPError) as err:
            _parse(b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort")
        assert err.value.status == 400

    def test_chunked_rejected(self):
        with pytest.raises(HTTPError) as err:
            _parse(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            )
        assert err.value.status == 400

    def test_connection_close_semantics(self):
        req = _parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not req.keep_alive
        req = _parse(b"GET / HTTP/1.0\r\n\r\n")
        assert not req.keep_alive
        req = _parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
        assert req.keep_alive

    def test_malformed_json_body(self):
        req = Request(method="POST", target="/", path="/", body=b"{nope")
        with pytest.raises(HTTPError) as err:
            req.json()
        assert err.value.status == 400

    def test_response_bytes_roundtrip(self):
        raw = response_bytes(429, {"error": "busy"},
                             extra_headers={"Retry-After": "1"})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"HTTP/1.1 429 Too Many Requests" in head
        assert b"Retry-After: 1" in head
        assert json.loads(body) == {"error": "busy"}


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class _FakeHandle:
    def __init__(self, size: int) -> None:
        self.size = size

    def memory_bytes(self) -> int:
        return self.size

    def stats(self) -> dict:
        return {"memory_bytes": self.size}


class TestGraphRegistry:
    def test_lru_eviction_by_count(self):
        reg = GraphRegistry(max_graphs=2)
        assert reg.put("a", _FakeHandle(1)) == []
        assert reg.put("b", _FakeHandle(1)) == []
        evicted = reg.put("c", _FakeHandle(1))
        assert [fp for fp, _ in evicted] == ["a"]
        assert reg.fingerprints() == ["b", "c"]

    def test_get_refreshes_recency(self):
        reg = GraphRegistry(max_graphs=2)
        reg.put("a", _FakeHandle(1))
        reg.put("b", _FakeHandle(1))
        reg.get("a")  # a is now most recent; b must be the victim
        evicted = reg.put("c", _FakeHandle(1))
        assert [fp for fp, _ in evicted] == ["b"]

    def test_peek_does_not_refresh(self):
        reg = GraphRegistry(max_graphs=2)
        reg.put("a", _FakeHandle(1))
        reg.put("b", _FakeHandle(1))
        reg.peek("a")
        evicted = reg.put("c", _FakeHandle(1))
        assert [fp for fp, _ in evicted] == ["a"]

    def test_memory_budget_eviction(self):
        reg = GraphRegistry(max_graphs=None, memory_budget_bytes=100)
        reg.put("a", _FakeHandle(60))
        reg.put("b", _FakeHandle(60))  # 120 > 100: a must go
        assert reg.fingerprints() == ["b"]
        assert reg.evictions == 1

    def test_newest_never_evicted(self):
        reg = GraphRegistry(max_graphs=None, memory_budget_bytes=10)
        reg.put("huge", _FakeHandle(1000))
        assert reg.fingerprints() == ["huge"]

    def test_validation(self):
        with pytest.raises(ValueError):
            GraphRegistry(max_graphs=0)
        with pytest.raises(ValueError):
            GraphRegistry(memory_budget_bytes=0)


# ---------------------------------------------------------------------------
# Service
# ---------------------------------------------------------------------------


async def _request(port, method, target, body=None, ctype="application/json"):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    if body is None:
        payload = b""
    elif isinstance(body, (bytes, str)):
        payload = body.encode() if isinstance(body, str) else body
    else:
        payload = json.dumps(body).encode()
    writer.write(
        f"{method} {target} HTTP/1.1\r\nHost: t\r\nContent-Type: {ctype}\r\n"
        f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n".encode()
        + payload
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    headers = {}
    for line in head.decode().split("\r\n")[1:]:
        name, _, value = line.partition(": ")
        headers[name.lower()] = value
    return int(head.split()[1]), json.loads(body) if body else None, headers


def _graph():
    return erdos_renyi(80, 400, seed=9)


def _edges(graph):
    return [[int(u), int(v)] for u, v in graph.edge_list()]


def _serve(coro_fn, **service_kwargs):
    """Run ``coro_fn(service, port)`` against a started service."""

    async def go():
        service = ClusteringService(**service_kwargs)
        await service.start()
        try:
            return await coro_fn(service, service.port)
        finally:
            await service.stop()

    return asyncio.run(go())


class TestServiceEndpoints:
    def test_submit_query_lifecycle(self, tmp_path):
        graph = _graph()
        reference = api.cluster(graph, ScanParams(0.4, 3))

        async def drive(service, port):
            status, info, _ = await _request(
                port, "POST", "/graphs", {"edges": _edges(graph), "label": "er"}
            )
            assert status == 201
            assert info["fingerprint"] == graph_fingerprint(graph)
            assert info["indexed"] is True
            fp = info["fingerprint"]

            status, cold, _ = await _request(
                port, "GET", f"/graphs/{fp}/cluster?eps=0.4&mu=3"
            )
            assert status == 200 and cold["warm"] is False
            status, warm, _ = await _request(
                port, "GET", f"/graphs/{fp}/cluster?eps=0.4&mu=3"
            )
            assert status == 200 and warm["warm"] is True
            assert warm["num_clusters"] == reference.num_clusters

            status, labels, _ = await _request(
                port,
                "GET",
                f"/graphs/{fp}/cluster?eps=0.4&mu=3&include=labels",
            )
            assert labels["roles"] == reference.roles.tolist()
            assert labels["core_labels"] == reference.core_labels.tolist()
            assert labels["noncore_pairs"] == [
                [int(a), int(b)] for a, b in reference.noncore_pairs
            ]

            status, vertex, _ = await _request(
                port, "GET", f"/graphs/{fp}/vertex/3?eps=0.4&mu=3"
            )
            assert status == 200
            assert vertex["vertex"] == 3
            assert vertex["role"] in {"core", "noncore", "hub", "outlier"}

            status, sweep, _ = await _request(
                port, "POST", f"/graphs/{fp}/sweep",
                {"eps": [0.3, 0.5], "mu": [2]},
            )
            assert status == 200 and len(sweep["points"]) == 2

            status, listing, _ = await _request(port, "GET", "/graphs")
            assert [g["fingerprint"] for g in listing["graphs"]] == [fp]

            status, deleted, _ = await _request(
                port, "DELETE", f"/graphs/{fp}"
            )
            assert status == 200 and deleted["unloaded"] is True
            status, _, _ = await _request(
                port, "GET", f"/graphs/{fp}/cluster?eps=0.4&mu=3"
            )
            assert status == 404

        _serve(drive)

    def test_submit_text_body_and_dedup(self):
        graph = _graph()
        text = "\n".join(f"{u} {v}" for u, v in graph.edge_list())

        async def drive(service, port):
            status, first, _ = await _request(
                port, "POST", "/graphs", text, ctype="text/plain"
            )
            assert status == 201
            assert first["fingerprint"] == graph_fingerprint(graph)
            status, again, _ = await _request(
                port, "POST", "/graphs", {"edges": _edges(graph)}
            )
            assert status == 200 and again["already_loaded"] is True

        _serve(drive)

    def test_error_mapping(self):
        graph = _graph()

        async def drive(service, port):
            checks = [
                ("GET", "/nope", None, 404),
                ("PATCH", "/graphs", None, 405),
                ("POST", "/graphs", {"edges": []}, 400),
                ("POST", "/graphs", {"wrong": 1}, 400),
                ("POST", "/graphs", {"edges": [[0, -2]]}, 400),
                ("GET", "/graphs/beef/cluster?eps=0.5&mu=2", None, 404),
            ]
            for method, target, body, want in checks:
                status, payload, _ = await _request(port, method, target, body)
                assert status == want, (target, status, payload)
                assert "error" in payload

            status, info, _ = await _request(
                port, "POST", "/graphs", {"edges": _edges(graph)}
            )
            fp = info["fingerprint"]
            for query, want in [
                ("eps=2.0&mu=2", 400),    # eps out of (0, 1]
                ("eps=0.5", 400),         # mu missing
                ("eps=abc&mu=2", 400),
                ("eps=0.5&mu=2&algorithm=magic", 400),
            ]:
                status, payload, _ = await _request(
                    port, "GET", f"/graphs/{fp}/cluster?{query}"
                )
                assert status == want, (query, payload)
            status, payload, _ = await _request(
                port, "GET", f"/graphs/{fp}/vertex/999?eps=0.5&mu=2"
            )
            assert status == 404
            status, payload, _ = await _request(
                port, "POST", f"/graphs/{fp}/sweep", {"eps": [], "mu": [2]}
            )
            assert status == 400

        _serve(drive)

    def test_stats_and_health(self):
        async def drive(service, port):
            status, health, _ = await _request(port, "GET", "/healthz")
            assert status == 200 and health["status"] == "ok"
            status, stats, _ = await _request(port, "GET", "/stats")
            assert status == 200
            assert stats["registry"]["graphs"] == 0
            assert stats["counters"]["requests"] >= 1

        _serve(drive)

    def test_lru_eviction_over_http(self):
        g1, g2 = erdos_renyi(40, 150, seed=1), erdos_renyi(40, 150, seed=2)

        async def drive(service, port):
            for g in (g1, g2):
                status, _, _ = await _request(
                    port, "POST", "/graphs", {"edges": _edges(g)}
                )
                assert status == 201
            status, stats, _ = await _request(port, "GET", "/stats")
            assert stats["registry"]["graphs"] == 1
            assert stats["registry"]["evictions"] == 1
            assert stats["registry"]["fingerprints"] == [
                graph_fingerprint(g2)
            ]
            # the evicted handle is gone from the session too
            assert len(service.session.handles()) == 1

        _serve(drive, max_graphs=1)

    def test_ledger_batch_record(self, tmp_path):
        graph = _graph()
        ledger = tmp_path / "service.jsonl"

        async def drive(service, port):
            status, info, _ = await _request(
                port, "POST", "/graphs", {"edges": _edges(graph)}
            )
            fp = info["fingerprint"]
            for _ in range(3):
                await _request(
                    port, "GET", f"/graphs/{fp}/cluster?eps=0.5&mu=2"
                )

        _serve(drive, ledger_path=ledger, ledger_flush_every=2)
        records = [
            json.loads(line) for line in ledger.read_text().splitlines()
        ]
        service_records = [r for r in records if r["kind"] == "service"]
        assert service_records
        metrics = service_records[0]["metrics"]
        assert metrics["service.batch_queries"] >= 2
        assert "service.p50_ms" in metrics and "service.p95_ms" in metrics


class TestCoalescingAndAdmission:
    def test_identical_queries_coalesce_and_different_rejected(self):
        graph = _graph()
        gate = threading.Event()

        async def drive(service, port):
            status, info, _ = await _request(
                port, "POST", "/graphs", {"edges": _edges(graph)}
            )
            fp = info["fingerprint"]
            loop = asyncio.get_running_loop()
            # Occupy the single executor thread: every heavy query
            # started now stays in flight until the gate opens.
            blocker = loop.run_in_executor(service._executor, gate.wait)
            await asyncio.sleep(0.05)

            same = [
                asyncio.create_task(
                    _request(
                        port, "GET", f"/graphs/{fp}/cluster?eps=0.44&mu=3"
                    )
                )
                for _ in range(5)
            ]
            await asyncio.sleep(0.1)
            # A different key while the only heavy slot is taken: 429.
            status, payload, headers = await _request(
                port, "GET", f"/graphs/{fp}/cluster?eps=0.77&mu=4"
            )
            assert status == 429
            assert headers.get("retry-after") == "1"
            assert "limit" in payload["error"]

            gate.set()
            await blocker
            results = await asyncio.gather(*same)
            assert [r[0] for r in results] == [200] * 5
            assert len({r[1]["num_clusters"] for r in results}) == 1
            assert service.counters["coalesced"] == 4
            assert service.counters["rejected"] == 1

        try:
            _serve(
                drive, max_concurrent_queries=1, executor_workers=1
            )
        finally:
            gate.set()  # never leave the executor thread parked

    def test_warm_queries_bypass_admission(self):
        graph = _graph()
        gate = threading.Event()

        async def drive(service, port):
            status, info, _ = await _request(
                port, "POST", "/graphs", {"edges": _edges(graph)}
            )
            fp = info["fingerprint"]
            status, _, _ = await _request(
                port, "GET", f"/graphs/{fp}/cluster?eps=0.5&mu=2"
            )
            assert status == 200
            loop = asyncio.get_running_loop()
            blocker = loop.run_in_executor(service._executor, gate.wait)
            await asyncio.sleep(0.05)
            # Executor fully blocked — the memoized point still answers.
            status, warm, _ = await _request(
                port, "GET", f"/graphs/{fp}/cluster?eps=0.5&mu=2"
            )
            assert status == 200 and warm["warm"] is True
            gate.set()
            await blocker

        try:
            _serve(drive, max_concurrent_queries=1, executor_workers=1)
        finally:
            gate.set()


class TestServiceMatchesAPI:
    def test_bit_identity_across_points(self):
        graph = _graph()
        points = [(0.3, 2), (0.5, 3), (0.7, 2)]

        async def drive(service, port):
            status, info, _ = await _request(
                port, "POST", "/graphs", {"edges": _edges(graph)}
            )
            fp = info["fingerprint"]
            for eps, mu in points:
                status, payload, _ = await _request(
                    port,
                    "GET",
                    f"/graphs/{fp}/cluster?eps={eps}&mu={mu}&include=labels",
                )
                reference = api.cluster(graph, ScanParams(eps, mu))
                assert payload["roles"] == reference.roles.tolist()
                assert (
                    payload["core_labels"]
                    == reference.core_labels.tolist()
                )
                assert payload["noncore_pairs"] == [
                    [int(a), int(b)] for a, b in reference.noncore_pairs
                ]

        _serve(drive)


class TestUpdatesEndpoint:
    def test_update_rekeys_and_serves_warm(self):
        graph = _graph()
        n = graph.num_vertices

        async def drive(service, port):
            status, info, _ = await _request(
                port, "POST", "/graphs", {"edges": _edges(graph)}
            )
            assert status == 201
            old_fp = info["fingerprint"]
            status, _, _ = await _request(
                port, "GET", f"/graphs/{old_fp}/cluster?eps=0.4&mu=3"
            )
            assert status == 200

            status, report, _ = await _request(
                port,
                "POST",
                f"/graphs/{old_fp}/updates",
                {"edits": {"insert": [[0, n - 1]], "remove": []}},
            )
            assert status == 200, report
            assert report["previous_fingerprint"] == old_fp
            assert report["fingerprint"] != old_fp
            assert report["inserted"] == 1
            assert report["warm_points"] == 1
            new_fp = report["fingerprint"]

            # Registry re-keyed: old fingerprint gone, new one warm.
            status, payload, _ = await _request(
                port, "GET", f"/graphs/{old_fp}/cluster?eps=0.4&mu=3"
            )
            assert status == 404
            status, warm, _ = await _request(
                port,
                "GET",
                f"/graphs/{new_fp}/cluster?eps=0.4&mu=3&include=labels",
            )
            assert status == 200 and warm["warm"] is True

            mutated = api.open(service.registry.get(new_fp).graph)
            reference = api.cluster(mutated.graph, ScanParams(0.4, 3))
            assert warm["roles"] == reference.roles.tolist()
            assert warm["core_labels"] == reference.core_labels.tolist()

            status, stats, _ = await _request(port, "GET", "/stats")
            assert stats["counters"]["updates"] == 1

        _serve(drive)

    def test_sequential_batches_accumulate(self):
        graph = _graph()
        n = graph.num_vertices

        async def drive(service, port):
            status, info, _ = await _request(
                port, "POST", "/graphs", {"edges": _edges(graph)}
            )
            fp = info["fingerprint"]
            for k in range(3):
                status, report, _ = await _request(
                    port,
                    "POST",
                    f"/graphs/{fp}/updates",
                    {"insert": [[k, n - 1 - k]], "remove": []},
                )
                assert status == 200, report
                fp = report["fingerprint"]
                assert report["batch"] == k
            status, listing, _ = await _request(port, "GET", "/graphs")
            assert [g["fingerprint"] for g in listing["graphs"]] == [fp]

        _serve(drive)

    def test_update_error_mapping(self):
        graph = _graph()

        async def drive(service, port):
            status, payload, _ = await _request(
                port,
                "POST",
                "/graphs/beef/updates",
                {"insert": [[0, 1]], "remove": []},
            )
            assert status == 404

            status, info, _ = await _request(
                port, "POST", "/graphs", {"edges": _edges(graph)}
            )
            fp = info["fingerprint"]
            bad_bodies = [
                None,                                  # no body
                {"edits": {"bogus": [[0, 1]]}},        # unknown key
                {"edits": [["?", 0, 1]]},              # unknown op kind
                {"insert": [], "remove": []},          # empty batch
                {"insert": [[0, 10_000]], "remove": []},  # out of range
                {"insert": [[3, 3]], "remove": []},    # self loop
            ]
            for body in bad_bodies:
                status, payload, _ = await _request(
                    port, "POST", f"/graphs/{fp}/updates", body
                )
                assert status == 400, (body, payload)
                assert "error" in payload
            # The handle still answers on its original fingerprint.
            status, _, _ = await _request(
                port, "GET", f"/graphs/{fp}/cluster?eps=0.5&mu=2"
            )
            assert status == 200

        _serve(drive)


# ---------------------------------------------------------------------------
# Destructive races: DELETE / LRU eviction vs in-flight work
# ---------------------------------------------------------------------------


class TestDestructiveRaces:
    def test_delete_races_inflight_cold_query(self):
        """DELETE lands while a cold query is pinned in the executor.

        The query must complete with its correct answer (the discard is
        deferred until no in-flight work references the handle), new
        queries get a structured 404, and the handle is eventually
        closed — never a crash or half-closed handle under live work.
        """
        graph = _graph()
        gate = threading.Event()
        expected = api.cluster(graph, ScanParams(0.43, 2))

        async def drive(service, port):
            _, info, _ = await _request(
                port, "POST", "/graphs", {"edges": _edges(graph)}
            )
            fp = info["fingerprint"]
            handle = service.registry.peek(fp)
            loop = asyncio.get_running_loop()
            blocker = loop.run_in_executor(service._executor, gate.wait)
            await asyncio.sleep(0.05)
            inflight = asyncio.create_task(
                _request(
                    port,
                    "GET",
                    f"/graphs/{fp}/cluster?eps=0.43&mu=2&include=labels",
                )
            )
            await asyncio.sleep(0.1)
            assert service._inflight  # pinned behind the blocked executor
            status, payload, _ = await _request(
                port, "DELETE", f"/graphs/{fp}"
            )
            assert status == 200 and payload["unloaded"] is True
            status, payload, _ = await _request(
                port, "GET", f"/graphs/{fp}/cluster?eps=0.5&mu=2"
            )
            assert status == 404 and "error" in payload
            gate.set()
            await blocker
            status, answer, _ = await inflight
            assert status == 200, answer
            assert answer["roles"] == expected.roles.tolist()
            # The deferred discard runs once the in-flight key drains.
            for _ in range(500):
                if handle._index is None:
                    break
                await asyncio.sleep(0.01)
            assert handle._index is None  # discarded, after the query

        try:
            _serve(drive, executor_workers=1)
        finally:
            gate.set()

    def test_delete_loses_update_race_with_structured_404(self):
        """DELETE queued behind an in-flight update batch.

        The update wins (it holds the per-handle lock), re-keys the
        graph, and the late DELETE observes the re-key: a structured
        404, with the post-update graph still resident and intact.
        """
        graph = _graph()
        gate = threading.Event()

        async def drive(service, port):
            _, info, _ = await _request(
                port, "POST", "/graphs", {"edges": _edges(graph)}
            )
            fp = info["fingerprint"]
            loop = asyncio.get_running_loop()
            blocker = loop.run_in_executor(service._executor, gate.wait)
            await asyncio.sleep(0.05)
            update = asyncio.create_task(
                _request(
                    port,
                    "POST",
                    f"/graphs/{fp}/updates",
                    {"insert": [[0, 79], [1, 78]]},
                )
            )
            await asyncio.sleep(0.1)
            delete = asyncio.create_task(
                _request(port, "DELETE", f"/graphs/{fp}")
            )
            await asyncio.sleep(0.1)
            assert not delete.done()  # parked on the per-handle lock
            gate.set()
            await blocker
            status, applied, _ = await update
            assert status == 200, applied
            new_fp = applied["fingerprint"]
            status, payload, _ = await delete
            assert status == 404, payload
            assert "re-keyed" in payload["error"]
            # The update's result is untouched by the losing DELETE.
            status, _, _ = await _request(
                port, "GET", f"/graphs/{new_fp}/cluster?eps=0.5&mu=2"
            )
            assert status == 200
            assert service.registry.fingerprints() == [new_fp]

        try:
            _serve(drive, executor_workers=1)
        finally:
            gate.set()

    def test_eviction_races_inflight_update_batch(self, tmp_path):
        """LRU eviction lands while an update batch is mid-apply.

        The update loses with a structured 409, no WAL record is
        written for the aborted batch (the log stays replayable), and
        the mutated handle is unreachable — no half-mutation survives.
        """
        from repro.service import ServiceWAL, recover

        gate = threading.Event()
        entered = threading.Event()
        graph_a = erdos_renyi(60, 240, seed=1)
        graph_b = erdos_renyi(60, 240, seed=2)

        async def drive(service, port):
            _, info, _ = await _request(
                port, "POST", "/graphs", {"edges": _edges(graph_a)}
            )
            fp_a = info["fingerprint"]
            handle = service.registry.peek(fp_a)
            original = handle.apply_updates

            def slow_apply(batch):
                entered.set()
                gate.wait()
                return original(batch)

            handle.apply_updates = slow_apply
            update = asyncio.create_task(
                _request(
                    port,
                    "POST",
                    f"/graphs/{fp_a}/updates",
                    {"insert": [[0, 59]]},
                )
            )
            while not entered.is_set():
                await asyncio.sleep(0.01)
            # The submit evicts graph A (max_graphs=1) mid-apply.
            status, info_b, _ = await _request(
                port, "POST", "/graphs", {"edges": _edges(graph_b)}
            )
            assert status == 201
            fp_b = info_b["fingerprint"]
            gate.set()
            status, payload, _ = await update
            assert status == 409, payload
            assert "evicted" in payload["error"]
            assert "not committed" in payload["error"]
            assert service.registry.fingerprints() == [fp_b]
            status, _, _ = await _request(
                port, "GET", f"/graphs/{fp_a}/cluster?eps=0.5&mu=2"
            )
            assert status == 404  # the mutated handle is unreachable
            return fp_b

        try:
            fp_b = _serve(drive, max_graphs=1, wal_dir=tmp_path / "wal")
        finally:
            gate.set()
        # The aborted batch never reached the WAL: replay works and
        # reconstructs exactly the post-eviction registry.
        wal = ServiceWAL(tmp_path / "wal")
        assert all(r["op"] != "update" for r in wal.read_records())
        report, _ = recover(
            wal, session=api.Session(), registry=(reg := GraphRegistry())
        )
        assert reg.fingerprints() == [fp_b]
        assert report.evictions_replayed == 1
