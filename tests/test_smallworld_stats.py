"""Watts-Strogatz generator and the extended graph statistics."""

import numpy as np
import pytest

from repro.core import brute_force_scan, ppscan
from repro.graph import (
    clustering_coefficient,
    complete_graph,
    degree_percentiles,
    empty_graph,
    path_graph,
    star_graph,
)
from repro.graph.generators import erdos_renyi, watts_strogatz
from repro.types import ScanParams


class TestWattsStrogatz:
    def test_lattice_at_zero_rewiring(self):
        g = watts_strogatz(20, k=4, rewire_p=0.0, seed=0)
        assert g.num_edges == 40
        assert all(g.degree(u) == 4 for u in range(20))

    def test_rewiring_preserves_edge_count_roughly(self):
        g = watts_strogatz(200, k=6, rewire_p=0.3, seed=1)
        assert g.num_edges == pytest.approx(600, rel=0.02)
        g.validate()

    def test_deterministic(self):
        a = watts_strogatz(100, k=4, rewire_p=0.1, seed=2)
        b = watts_strogatz(100, k=4, rewire_p=0.1, seed=2)
        assert np.array_equal(a.dst, b.dst)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            watts_strogatz(10, k=3)
        with pytest.raises(ValueError):
            watts_strogatz(4, k=4)
        with pytest.raises(ValueError):
            watts_strogatz(10, k=4, rewire_p=2.0)

    def test_high_clustering_vs_random(self):
        ws = watts_strogatz(300, k=6, rewire_p=0.05, seed=3)
        er = erdos_renyi(300, ws.num_edges, seed=3)
        assert clustering_coefficient(ws) > 3 * clustering_coefficient(er)

    def test_scan_clusters_the_lattice(self):
        """The unrewired ring lattice is SCAN-clusterable: adjacent ring
        vertices share k/2 - 1 neighbors."""
        g = watts_strogatz(40, k=6, rewire_p=0.0, seed=0)
        params = ScanParams(0.5, 2)
        result = ppscan(g, params)
        assert result.same_clustering(brute_force_scan(g, params))
        assert result.num_clusters >= 1


class TestClusteringCoefficient:
    def test_complete(self):
        assert clustering_coefficient(complete_graph(8)) == 1.0

    def test_triangle_free(self):
        assert clustering_coefficient(path_graph(10)) == 0.0
        assert clustering_coefficient(star_graph(6)) == 0.0

    def test_empty(self):
        assert clustering_coefficient(empty_graph(0)) == 0.0
        assert clustering_coefficient(empty_graph(5)) == 0.0

    def test_sampled_close_to_exact(self):
        g = watts_strogatz(400, k=6, rewire_p=0.1, seed=4)
        exact = clustering_coefficient(g)
        sampled = clustering_coefficient(g, sample=200, seed=1)
        assert sampled == pytest.approx(exact, abs=0.1)

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        g = erdos_renyi(80, 320, seed=5)
        nx_g = nx.Graph(g.edge_list().tolist())
        nx_g.add_nodes_from(range(g.num_vertices))
        assert clustering_coefficient(g) == pytest.approx(
            nx.average_clustering(nx_g)
        )


class TestDegreePercentiles:
    def test_uniform_degrees(self):
        g = complete_graph(6)
        pct = degree_percentiles(g)
        assert pct[50] == 5 and pct[100] == 5

    def test_star(self):
        pct = degree_percentiles(star_graph(9), percentiles=(50, 100))
        assert pct[50] == 1 and pct[100] == 9

    def test_empty(self):
        assert degree_percentiles(empty_graph(0)) == {
            50: 0,
            90: 0,
            99: 0,
            100: 0,
        }
