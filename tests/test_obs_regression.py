"""Regression gating: metric classification, tolerances, the CLI gate."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.regression import (
    DEFAULT_WALL_TOL,
    Regression,
    calibrate,
    classify_metric,
    compare_results,
    flatten,
)

SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"


def sample_result() -> dict:
    """A miniature of the smoke-result shape."""
    return {
        "workload": {"graph": "livejournal", "scale": 0.1, "eps": 0.4, "mu": 5},
        "clustering": {"clusters": 12, "cores": 40},
        "calibration_seconds": 0.007,
        "scalar": {"compsims": 2000, "arcs": 18000, "wall_units": 4.0},
        "batched": {
            "compsims": 2500,
            "arcs": 17000,
            "wall_units": 1.4,
            "speedup": 2.9,
        },
    }


class TestFlatten:
    def test_nested_to_dotted_keys(self):
        flat = flatten({"a": {"b": 1, "c": {"d": 2.5}}, "e": 3})
        assert flat == {"a.b": 1.0, "a.c.d": 2.5, "e": 3.0}

    def test_non_numeric_leaves_skipped(self):
        flat = flatten({"graph": "livejournal", "n": 7, "ok": True})
        assert flat == {"n": 7.0, "ok": 1.0}


class TestClassifyMetric:
    @pytest.mark.parametrize(
        "key,kind",
        [
            ("calibration_seconds", "info"),
            ("batched.speedup", "speedup"),
            ("batched.wall_units", "wall"),
            ("record.wall_seconds", "wall"),
            ("stage.total_seconds", "wall"),
            ("scalar.compsims", "count"),
            ("clustering.clusters", "count"),
        ],
    )
    def test_kinds(self, key, kind):
        assert classify_metric(key) == kind


class TestCompareResults:
    def test_identical_results_pass(self):
        assert compare_results(sample_result(), sample_result()) == []

    def test_doctored_20pct_slower_wall_fails_at_defaults(self):
        # The acceptance pin: a 20% wall regression must trip the default
        # 15% tolerance.
        fresh = sample_result()
        fresh["batched"]["wall_units"] *= 1.20
        regressions = compare_results(sample_result(), fresh)
        assert [r.key for r in regressions] == ["batched.wall_units"]
        reg = regressions[0]
        assert reg.kind == "wall"
        assert reg.rel_change == pytest.approx(0.20)
        assert reg.tolerance == DEFAULT_WALL_TOL

    def test_wall_within_tolerance_passes(self):
        fresh = sample_result()
        fresh["batched"]["wall_units"] *= 1.10
        assert compare_results(sample_result(), fresh) == []

    def test_faster_wall_passes(self):
        fresh = sample_result()
        fresh["scalar"]["wall_units"] *= 0.5
        assert compare_results(sample_result(), fresh) == []

    def test_speedup_collapse_fails(self):
        fresh = sample_result()
        fresh["batched"]["speedup"] = 1.0  # down from 2.9 (-66%)
        keys = [r.key for r in compare_results(sample_result(), fresh)]
        assert keys == ["batched.speedup"]

    def test_small_speedup_drop_passes(self):
        fresh = sample_result()
        fresh["batched"]["speedup"] *= 0.8
        assert compare_results(sample_result(), fresh) == []

    @pytest.mark.parametrize("factor", [1.01, 0.99])
    def test_count_drift_fails_both_directions(self, factor):
        fresh = sample_result()
        fresh["scalar"]["compsims"] = int(
            fresh["scalar"]["compsims"] * factor
        )
        regressions = compare_results(sample_result(), fresh)
        assert [r.key for r in regressions] == ["scalar.compsims"]
        assert regressions[0].kind == "count"

    def test_missing_metric_fails_loudly(self):
        fresh = sample_result()
        del fresh["batched"]["speedup"]
        regressions = compare_results(sample_result(), fresh)
        assert [(r.key, r.kind) for r in regressions] == [
            ("batched.speedup", "missing")
        ]

    def test_new_metric_in_fresh_is_ignored(self):
        fresh = sample_result()
        fresh["batched"]["new_counter"] = 123
        assert compare_results(sample_result(), fresh) == []

    def test_calibration_never_gated(self):
        fresh = sample_result()
        fresh["calibration_seconds"] *= 10  # a much slower host
        assert compare_results(sample_result(), fresh) == []

    def test_tolerances_are_adjustable(self):
        fresh = sample_result()
        fresh["batched"]["wall_units"] *= 1.20
        assert compare_results(sample_result(), fresh, wall_tol=0.5) == []


class TestRegressionDescribe:
    def test_describe_mentions_direction_and_tolerance(self):
        reg = Regression("x.wall", "wall", 1.0, 1.2, 0.15)
        text = reg.describe()
        assert "x.wall" in text
        assert "+20.0%" in text
        assert "15.0%" in text

    def test_rel_change_zero_baseline(self):
        assert Regression("k", "count", 0.0, 5.0, 0.0).rel_change == float(
            "inf"
        )
        assert Regression("k", "count", 0.0, 0.0, 0.0).rel_change == 0.0


class TestCalibrate:
    def test_positive_and_repeatable_order_of_magnitude(self):
        a = calibrate(rounds=1)
        b = calibrate(rounds=1)
        assert a > 0 and b > 0
        assert max(a, b) / min(a, b) < 10


class TestCheckRegressionScript:
    """The CLI gate, exercised on doctored result files (no smoke run)."""

    @staticmethod
    def _run(*argv):
        return subprocess.run(
            [sys.executable, str(SCRIPT), *argv],
            capture_output=True,
            text=True,
        )

    @staticmethod
    def _write(path, data):
        path.write_text(json.dumps(data))
        return str(path)

    def test_identical_files_exit_zero(self, tmp_path):
        base = self._write(tmp_path / "base.json", sample_result())
        fresh = self._write(tmp_path / "fresh.json", sample_result())
        proc = self._run("--baseline", base, "--fresh", fresh)
        assert proc.returncode == 0, proc.stderr
        assert "OK: no regressions" in proc.stdout

    def test_doctored_slower_result_exits_nonzero(self, tmp_path):
        doctored = sample_result()
        doctored["batched"]["wall_units"] *= 1.20
        base = self._write(tmp_path / "base.json", sample_result())
        fresh = self._write(tmp_path / "fresh.json", doctored)
        proc = self._run("--baseline", base, "--fresh", fresh)
        assert proc.returncode == 1
        assert "REGRESSIONS" in proc.stdout
        assert "batched.wall_units" in proc.stdout

    def test_missing_baseline_exits_two(self, tmp_path):
        fresh = self._write(tmp_path / "fresh.json", sample_result())
        proc = self._run(
            "--baseline", str(tmp_path / "absent.json"), "--fresh", fresh
        )
        assert proc.returncode == 2
        assert "no baseline" in proc.stderr

    def test_update_baseline_writes_and_passes(self, tmp_path):
        fresh = self._write(tmp_path / "fresh.json", sample_result())
        base_path = tmp_path / "base.json"
        proc = self._run(
            "--baseline", str(base_path), "--fresh", fresh, "--update-baseline"
        )
        assert proc.returncode == 0
        assert json.loads(base_path.read_text()) == sample_result()

    def test_committed_smoke_baseline_exists(self):
        baseline = SCRIPT.parent / "baselines" / "smoke.json"
        data = json.loads(baseline.read_text())
        assert data["workload"]["graph"] == "livejournal"
        assert data["batched"]["speedup"] > 1.0
