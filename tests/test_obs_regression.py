"""Regression gating: metric classification, tolerances, the CLI gate."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.regression import (
    DEFAULT_WALL_TOL,
    Regression,
    calibrate,
    classify_metric,
    compare_results,
    flatten,
    median_mad,
    trend_bands,
    trend_gate,
)

SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"


def sample_result() -> dict:
    """A miniature of the smoke-result shape."""
    return {
        "workload": {"graph": "livejournal", "scale": 0.1, "eps": 0.4, "mu": 5},
        "clustering": {"clusters": 12, "cores": 40},
        "calibration_seconds": 0.007,
        "scalar": {"compsims": 2000, "arcs": 18000, "wall_units": 4.0},
        "batched": {
            "compsims": 2500,
            "arcs": 17000,
            "wall_units": 1.4,
            "speedup": 2.9,
        },
    }


class TestFlatten:
    def test_nested_to_dotted_keys(self):
        flat = flatten({"a": {"b": 1, "c": {"d": 2.5}}, "e": 3})
        assert flat == {"a.b": 1.0, "a.c.d": 2.5, "e": 3.0}

    def test_non_numeric_leaves_skipped(self):
        flat = flatten({"graph": "livejournal", "n": 7, "ok": True})
        assert flat == {"n": 7.0, "ok": 1.0}


class TestClassifyMetric:
    @pytest.mark.parametrize(
        "key,kind",
        [
            ("calibration_seconds", "info"),
            ("batched.speedup", "speedup"),
            ("batched.wall_units", "wall"),
            ("record.wall_seconds", "wall"),
            ("stage.total_seconds", "wall"),
            ("scalar.compsims", "count"),
            ("clustering.clusters", "count"),
        ],
    )
    def test_kinds(self, key, kind):
        assert classify_metric(key) == kind


class TestCompareResults:
    def test_identical_results_pass(self):
        assert compare_results(sample_result(), sample_result()) == []

    def test_doctored_20pct_slower_wall_fails_at_defaults(self):
        # The acceptance pin: a 20% wall regression must trip the default
        # 15% tolerance.
        fresh = sample_result()
        fresh["batched"]["wall_units"] *= 1.20
        regressions = compare_results(sample_result(), fresh)
        assert [r.key for r in regressions] == ["batched.wall_units"]
        reg = regressions[0]
        assert reg.kind == "wall"
        assert reg.rel_change == pytest.approx(0.20)
        assert reg.tolerance == DEFAULT_WALL_TOL

    def test_wall_within_tolerance_passes(self):
        fresh = sample_result()
        fresh["batched"]["wall_units"] *= 1.10
        assert compare_results(sample_result(), fresh) == []

    def test_faster_wall_passes(self):
        fresh = sample_result()
        fresh["scalar"]["wall_units"] *= 0.5
        assert compare_results(sample_result(), fresh) == []

    def test_speedup_collapse_fails(self):
        fresh = sample_result()
        fresh["batched"]["speedup"] = 1.0  # down from 2.9 (-66%)
        keys = [r.key for r in compare_results(sample_result(), fresh)]
        assert keys == ["batched.speedup"]

    def test_small_speedup_drop_passes(self):
        fresh = sample_result()
        fresh["batched"]["speedup"] *= 0.8
        assert compare_results(sample_result(), fresh) == []

    @pytest.mark.parametrize("factor", [1.01, 0.99])
    def test_count_drift_fails_both_directions(self, factor):
        fresh = sample_result()
        fresh["scalar"]["compsims"] = int(
            fresh["scalar"]["compsims"] * factor
        )
        regressions = compare_results(sample_result(), fresh)
        assert [r.key for r in regressions] == ["scalar.compsims"]
        assert regressions[0].kind == "count"

    def test_missing_metric_fails_loudly(self):
        fresh = sample_result()
        del fresh["batched"]["speedup"]
        regressions = compare_results(sample_result(), fresh)
        assert [(r.key, r.kind) for r in regressions] == [
            ("batched.speedup", "missing")
        ]

    def test_new_metric_in_fresh_is_ignored(self):
        fresh = sample_result()
        fresh["batched"]["new_counter"] = 123
        assert compare_results(sample_result(), fresh) == []

    def test_calibration_never_gated(self):
        fresh = sample_result()
        fresh["calibration_seconds"] *= 10  # a much slower host
        assert compare_results(sample_result(), fresh) == []

    def test_tolerances_are_adjustable(self):
        fresh = sample_result()
        fresh["batched"]["wall_units"] *= 1.20
        assert compare_results(sample_result(), fresh, wall_tol=0.5) == []


class TestRegressionDescribe:
    def test_describe_mentions_direction_and_tolerance(self):
        reg = Regression("x.wall", "wall", 1.0, 1.2, 0.15)
        text = reg.describe()
        assert "x.wall" in text
        assert "+20.0%" in text
        assert "15.0%" in text

    def test_rel_change_zero_baseline(self):
        assert Regression("k", "count", 0.0, 5.0, 0.0).rel_change == float(
            "inf"
        )
        assert Regression("k", "count", 0.0, 0.0, 0.0).rel_change == 0.0


class TestCalibrate:
    def test_positive_and_repeatable_order_of_magnitude(self):
        a = calibrate(rounds=1)
        b = calibrate(rounds=1)
        assert a > 0 and b > 0
        assert max(a, b) / min(a, b) < 10


class TestCheckRegressionScript:
    """The CLI gate, exercised on doctored result files (no smoke run)."""

    @staticmethod
    def _run(*argv):
        return subprocess.run(
            [sys.executable, str(SCRIPT), *argv],
            capture_output=True,
            text=True,
        )

    @staticmethod
    def _write(path, data):
        path.write_text(json.dumps(data))
        return str(path)

    def test_identical_files_exit_zero(self, tmp_path):
        base = self._write(tmp_path / "base.json", sample_result())
        fresh = self._write(tmp_path / "fresh.json", sample_result())
        ledger = str(tmp_path / "ledger.jsonl")
        proc = self._run("--baseline", base, "--fresh", fresh, "--ledger", ledger)
        assert proc.returncode == 0, proc.stderr
        assert "OK: no regressions" in proc.stdout
        assert "ledger: appended" in proc.stdout

    def test_doctored_slower_result_exits_nonzero(self, tmp_path):
        doctored = sample_result()
        doctored["batched"]["wall_units"] *= 1.20
        base = self._write(tmp_path / "base.json", sample_result())
        fresh = self._write(tmp_path / "fresh.json", doctored)
        ledger = str(tmp_path / "ledger.jsonl")
        proc = self._run("--baseline", base, "--fresh", fresh, "--ledger", ledger)
        assert proc.returncode == 1
        assert "REGRESSIONS" in proc.stdout
        assert "batched.wall_units" in proc.stdout

    def test_missing_baseline_exits_two(self, tmp_path):
        fresh = self._write(tmp_path / "fresh.json", sample_result())
        proc = self._run(
            "--baseline",
            str(tmp_path / "absent.json"),
            "--fresh",
            fresh,
            "--ledger",
            str(tmp_path / "ledger.jsonl"),
        )
        assert proc.returncode == 2
        assert "no baseline" in proc.stderr

    def test_update_baseline_writes_and_passes(self, tmp_path):
        fresh = self._write(tmp_path / "fresh.json", sample_result())
        base_path = tmp_path / "base.json"
        proc = self._run(
            "--baseline", str(base_path), "--fresh", fresh, "--update-baseline"
        )
        assert proc.returncode == 0
        assert json.loads(base_path.read_text()) == sample_result()

    def test_committed_smoke_baseline_exists(self):
        baseline = SCRIPT.parent / "baselines" / "smoke.json"
        data = json.loads(baseline.read_text())
        assert data["workload"]["graph"] == "livejournal"
        assert data["batched"]["speedup"] > 1.0


# ---------------------------------------------------------------------------
# Trend-aware gating over ledger history
# ---------------------------------------------------------------------------


class TestMedianMad:
    def test_odd_and_even(self):
        assert median_mad([1.0, 2.0, 9.0]) == (2.0, 1.0)
        med, mad = median_mad([1.0, 2.0, 3.0, 4.0])
        assert med == 2.5 and mad == 1.0

    def test_robust_to_one_outlier(self):
        med, mad = median_mad([1.0, 1.1, 0.9, 1.0, 50.0])
        assert med == 1.0
        assert mad <= 0.1

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            median_mad([])


class TestTrendBands:
    def test_per_metric_bands_with_partial_coverage(self):
        bands = trend_bands(
            [
                {"a": {"wall_units": 1.0}, "n": 5},
                {"a": {"wall_units": 1.2}, "n": 5},
                {"a": {"wall_units": 0.8}},  # "n" missing here
            ]
        )
        med, mad, n = bands["a.wall_units"]
        assert med == 1.0 and n == 3
        assert bands["n"][2] == 2


class TestTrendGate:
    def history(self, n=5, wall=1.0, speedup=3.0, count=1000):
        """n comparable passing runs with mild genuine jitter."""
        out = []
        for i in range(n):
            jitter = 1.0 + 0.02 * ((i % 3) - 1)  # ±2%, the real-world noise
            out.append(
                {
                    "batched": {
                        "wall_units": wall * jitter,
                        "speedup": speedup / jitter,
                        "compsims": count,
                    }
                }
            )
        return out

    def fresh(self, wall=1.0, speedup=3.0, count=1000):
        return flatten(
            {
                "batched": {
                    "wall_units": wall,
                    "speedup": speedup,
                    "compsims": count,
                }
            }
        )

    def test_genuine_replay_passes(self):
        history = self.history()
        for past in history:
            assert trend_gate(history, flatten(past)) == []

    def test_two_x_slowdown_caught(self):
        violations = trend_gate(self.history(), self.fresh(wall=2.0))
        keys = {v.key for v in violations}
        assert "batched.wall_units" in keys
        v = next(v for v in violations if v.key == "batched.wall_units")
        assert v.kind == "wall" and v.fresh == 2.0
        assert "above the trend limit" in v.describe()

    def test_speedup_collapse_caught(self):
        violations = trend_gate(self.history(), self.fresh(speedup=1.4))
        assert any(v.key == "batched.speedup" for v in violations)

    def test_faster_wall_never_flagged(self):
        assert trend_gate(self.history(), self.fresh(wall=0.3)) == []

    def test_count_drift_caught_both_directions(self):
        up = trend_gate(self.history(), self.fresh(count=1300))
        down = trend_gate(self.history(), self.fresh(count=700))
        assert any(v.key == "batched.compsims" for v in up)
        assert any(v.key == "batched.compsims" for v in down)

    def test_thin_history_gates_nothing(self):
        history = self.history(n=2)
        assert trend_gate(history, self.fresh(wall=50.0)) == []

    def test_info_metrics_never_gated(self):
        history = [{"calibration_seconds": 0.01} for _ in range(5)]
        assert (
            trend_gate(history, {"calibration_seconds": 99.0}) == []
        )

    def test_rel_floor_absorbs_zero_mad_history(self):
        # Identical history -> MAD 0; the relative floor must still
        # allow ordinary noise through while catching 2x.
        history = [{"wall_units": 1.0} for _ in range(5)]
        assert trend_gate(history, {"wall_units": 1.1}) == []
        assert trend_gate(history, {"wall_units": 2.0}) != []

    def test_new_metric_missing_from_history_skipped(self):
        violations = trend_gate(self.history(), {"brand.new_wall": 9.0})
        assert violations == []


class TestTrendGateScript:
    """check_regression.py end to end: ledger history drives the gate."""

    @staticmethod
    def _run(*argv):
        return subprocess.run(
            [sys.executable, str(SCRIPT), *argv],
            capture_output=True,
            text=True,
        )

    def _seed_history(self, tmp_path, runs=3):
        ledger = str(tmp_path / "ledger.jsonl")
        base = tmp_path / "base.json"
        base.write_text(json.dumps(sample_result()))
        for _ in range(runs):
            fresh = tmp_path / "fresh.json"
            fresh.write_text(json.dumps(sample_result()))
            proc = self._run(
                "--baseline", str(base), "--fresh", str(fresh),
                "--ledger", ledger,
            )
            assert proc.returncode == 0, proc.stdout + proc.stderr
        return ledger, base

    def test_history_flips_gate_to_trend_mode(self, tmp_path):
        ledger, base = self._seed_history(tmp_path)
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(sample_result()))
        proc = self._run(
            "--baseline", str(base), "--fresh", str(fresh), "--ledger", ledger
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "within median/MAD bands" in proc.stdout

    def test_injected_slowdown_fails_against_history(self, tmp_path):
        ledger, base = self._seed_history(tmp_path)
        doctored = sample_result()
        doctored["batched"]["wall_units"] *= 2.0
        doctored["batched"]["speedup"] /= 2.0
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(doctored))
        # The static baseline would also catch this; drop it to prove
        # the *ledger history alone* is the gate.
        proc = self._run(
            "--baseline", str(tmp_path / "absent.json"),
            "--fresh", str(fresh), "--ledger", ledger,
        )
        assert proc.returncode == 1
        assert "REGRESSIONS vs ledger history" in proc.stdout
        assert "batched.wall_units" in proc.stdout

    def test_failed_run_excluded_from_future_bands(self, tmp_path):
        ledger, base = self._seed_history(tmp_path)
        doctored = sample_result()
        doctored["batched"]["wall_units"] *= 2.0
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(doctored))
        assert self._run(
            "--baseline", str(base), "--fresh", str(fresh), "--ledger", ledger
        ).returncode == 1
        # A genuine replay must still pass: the FAILed append above may
        # not widen the bands.
        fresh.write_text(json.dumps(sample_result()))
        proc = self._run(
            "--baseline", str(base), "--fresh", str(fresh),
            "--ledger", ledger, "--no-append",
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_no_append_leaves_ledger_untouched(self, tmp_path):
        ledger, base = self._seed_history(tmp_path, runs=1)
        before = Path(ledger).read_bytes()
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(sample_result()))
        self._run(
            "--baseline", str(base), "--fresh", str(fresh),
            "--ledger", ledger, "--no-append",
        )
        assert Path(ledger).read_bytes() == before
