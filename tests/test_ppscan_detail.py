"""ppSCAN internals: phases, pruning effectiveness, scheduling knobs."""

import numpy as np
import pytest

from repro.core import PPSCAN_STAGES, auto_task_threshold, ppscan
from repro.graph import complete_graph
from repro.graph.generators import chung_lu, powerlaw_weights, real_world_standin
from repro.types import ScanParams


@pytest.fixture(scope="module")
def graph():
    return chung_lu(powerlaw_weights(300, 2.3), 2000, seed=8)


class TestStages:
    def test_stage_order(self, graph):
        record = ppscan(graph, ScanParams(0.4, 4)).record
        assert tuple(s.name for s in record.stages) == PPSCAN_STAGES

    def test_prune_phase_off_leaves_empty_prune_costs(self, graph):
        record = ppscan(graph, ScanParams(0.4, 4), prune_phase=False).record
        # Stage exists (synthesized ranges) but roles were not pre-set, so
        # core checking sees every vertex.
        check = record.stage("core checking").total()
        assert check.arcs > 0

    def test_single_phase_clustering_empty_stage(self, graph):
        record = ppscan(
            graph, ScanParams(0.4, 4), two_phase_clustering=False
        ).record
        assert record.stage("core clustering (no compsim)").num_tasks == 0

    def test_wall_times_recorded(self, graph):
        record = ppscan(graph, ScanParams(0.4, 4)).record
        assert all(s.wall_seconds >= 0 for s in record.stages)
        assert record.wall_seconds >= sum(s.wall_seconds for s in record.stages) * 0.5


class TestPruningEffectiveness:
    def test_prune_phase_reduces_invocations(self, graph):
        params = ScanParams(0.7, 4)
        with_prune = ppscan(graph, params).record.compsim_invocations
        without = ppscan(
            graph, params, prune_phase=False
        ).record.compsim_invocations
        assert with_prune <= without

    def test_two_phase_reduces_clustering_compsims(self):
        # On a dense clusterable graph, phase-1 unions make phase-2 skip.
        g = complete_graph(40)
        params = ScanParams(0.3, 3)
        two = ppscan(g, params).record
        one = ppscan(g, params, two_phase_clustering=False).record
        assert (
            two.stage("core clustering (compsim)").total().compsims
            <= one.stage("core clustering (compsim)").total().compsims
        )

    def test_invocations_decrease_with_eps_extremes(self, graph):
        """Predicate pruning kills most work at extreme eps."""
        mid = ppscan(graph, ScanParams(0.5, 4)).record.compsim_invocations
        high = ppscan(graph, ScanParams(0.95, 4)).record.compsim_invocations
        assert high <= mid

    def test_invocations_bounded_by_edges(self, graph):
        for eps in (0.2, 0.5, 0.8):
            rec = ppscan(graph, ScanParams(eps, 4)).record
            assert rec.compsim_invocations <= graph.num_edges


class TestTaskThreshold:
    def test_auto_threshold_bounds(self):
        assert auto_task_threshold(100) == 64
        assert auto_task_threshold(10**9) == 32768
        assert auto_task_threshold(1024 * 500) == 500

    def test_smaller_threshold_more_tasks(self, graph):
        params = ScanParams(0.4, 4)
        fine = ppscan(graph, params, task_threshold=16).record
        coarse = ppscan(graph, params, task_threshold=10**8).record
        assert sum(s.num_tasks for s in fine.stages) > sum(
            s.num_tasks for s in coarse.stages
        )

    def test_work_nearly_independent_of_threshold(self, graph):
        """Task granularity only shifts intra-task similarity reuse: the
        serial backend commits per task, so coarser tasks see slightly
        fewer already-computed values.  Totals stay within a few percent
        of |E| and never exceed Theorem 4.1's bound."""
        params = ScanParams(0.4, 4)
        a = ppscan(graph, params, task_threshold=16).record
        b = ppscan(graph, params, task_threshold=10**8).record
        assert a.compsim_invocations <= graph.num_edges
        assert b.compsim_invocations <= graph.num_edges
        assert (
            abs(a.compsim_invocations - b.compsim_invocations)
            <= 0.1 * graph.num_edges
        )


class TestKernelChoice:
    def test_algorithm_name_reflects_kernel(self, graph):
        params = ScanParams(0.4, 4)
        assert ppscan(graph, params).algorithm == "ppSCAN"
        assert ppscan(graph, params, kernel="merge").algorithm == "ppSCAN-NO"
        named = ppscan(graph, params, algorithm_name="custom")
        assert named.algorithm == "custom"

    def test_vectorized_kernel_reports_vector_ops(self, graph):
        record = ppscan(graph, ScanParams(0.4, 4)).record
        assert record.total().vector_ops > 0

    def test_merge_kernel_no_vector_ops(self, graph):
        record = ppscan(graph, ScanParams(0.4, 4), kernel="merge").record
        assert record.total().vector_ops == 0

    def test_lane_width_changes_vector_counts(self):
        g = real_world_standin("orkut", scale=0.15)
        params = ScanParams(0.3, 5)
        v8 = ppscan(g, params, lanes=8).record.total().vector_ops
        v16 = ppscan(g, params, lanes=16).record.total().vector_ops
        assert v8 != v16
