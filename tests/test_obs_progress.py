"""Live progress: counters, ETA, rendering, ambient wiring, backends."""

import io

import pytest

from repro.core.ppscan import ppscan
from repro.graph.generators import erdos_renyi
from repro.obs import (
    NULL_PROGRESS,
    ProgressReporter,
    Tracer,
    current_progress,
    use_progress,
    use_tracer,
)
from repro.types import ScanParams


class FakeTTY(io.StringIO):
    def isatty(self):
        return True


class TestCounters:
    def test_phases_and_fractions(self):
        rep = ProgressReporter(io.StringIO())
        rep.phase_begin(100.0, label="similarity")
        rep.advance(25.0)
        snap = rep.snapshot()
        assert snap["phase"] == 1
        assert snap["label"] == "similarity"
        assert snap["fraction"] == pytest.approx(0.25)
        assert snap["active"]
        rep.phase_end()
        snap = rep.snapshot()
        assert snap["fraction"] == pytest.approx(1.0)
        assert not snap["active"]

    def test_eta_from_observed_rate(self):
        rep = ProgressReporter(io.StringIO())
        rep.phase_begin(100.0)
        with rep._lock:
            rep._phase_began -= 1.0  # pretend 1s elapsed
        rep.advance(50.0)
        eta = rep.snapshot()["eta_seconds"]
        # 50 units in ~1s -> ~1s remaining for the other 50.
        assert eta == pytest.approx(1.0, rel=0.2)

    def test_no_eta_at_zero_or_full(self):
        rep = ProgressReporter(io.StringIO())
        rep.phase_begin(100.0)
        assert rep.snapshot()["eta_seconds"] is None
        rep.advance(100.0)
        assert rep.snapshot()["eta_seconds"] is None

    def test_zero_total_is_safe(self):
        rep = ProgressReporter(io.StringIO())
        rep.phase_begin(0.0)
        rep.advance(0.0)
        assert rep.snapshot()["fraction"] == 0.0
        assert "%" in rep.format_line() or rep.format_line()


class TestFormatting:
    def test_line_contents(self):
        rep = ProgressReporter(io.StringIO(), unit="arcs")
        rep.phase_begin(19.5e6, label="similarity pruning")
        rep.advance(12.3e6)
        line = rep.format_line()
        assert "[phase 1]" in line
        assert "similarity pruning" in line
        assert "12.3M/19.5M arcs" in line
        assert "63.1%" in line

    def test_label_falls_back_to_tracer_span(self):
        rep = ProgressReporter(io.StringIO())
        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("core detection"):
                rep.phase_begin(10.0)
                assert rep.snapshot()["label"] == "core detection"

    def test_before_any_phase(self):
        rep = ProgressReporter(io.StringIO())
        assert rep.format_line() == "[starting]"

    def test_done_line_after_phase_end(self):
        rep = ProgressReporter(io.StringIO())
        rep.phase_begin(10.0, label="x")
        rep.phase_end()
        assert rep.format_line().endswith("done")


class TestRendering:
    def test_tty_rewrites_one_line(self):
        stream = FakeTTY()
        rep = ProgressReporter(stream, interval=0.01)
        rep.phase_begin(10.0, label="p")
        rep._render(0.0)
        rep._render(0.0)
        out = stream.getvalue()
        assert out.count("\r\x1b[2K") == 2  # rewritten, not appended

    def test_non_tty_logs_periodically(self):
        stream = io.StringIO()
        rep = ProgressReporter(stream, interval=0.01, log_interval=100.0)
        rep.phase_begin(10.0, label="p")
        rep._render(1000.0)  # first: elapsed > log_interval
        rep._render(1000.5)  # suppressed: within log_interval
        lines = [l for l in stream.getvalue().splitlines() if l]
        assert len(lines) == 1
        assert "\r" not in stream.getvalue()

    def test_closed_stream_goes_quiet(self):
        stream = FakeTTY()
        rep = ProgressReporter(stream, interval=0.01)
        rep.phase_begin(10.0)
        stream.close()
        rep._render(0.0)  # must not raise
        assert not rep.enabled

    def test_heartbeat_thread_lifecycle(self):
        rep = ProgressReporter(FakeTTY(), interval=0.005)
        with rep:
            rep.phase_begin(10.0, label="p")
            rep.advance(5.0)
            import time

            time.sleep(0.03)
        assert rep._thread is None
        assert "\r" in rep.stream.getvalue()


class TestAmbient:
    def test_default_is_null(self):
        assert current_progress() is NULL_PROGRESS
        assert not NULL_PROGRESS.enabled
        NULL_PROGRESS.phase_begin(5.0)
        NULL_PROGRESS.advance(1.0)
        NULL_PROGRESS.phase_end()  # all no-ops

    def test_use_progress_installs_and_restores(self):
        rep = ProgressReporter(io.StringIO())
        with use_progress(rep):
            assert current_progress() is rep
        assert current_progress() is NULL_PROGRESS


class TestBackendWiring:
    def test_serial_traced_run_advances_progress(self):
        graph = erdos_renyi(120, 600, seed=2)
        rep = ProgressReporter(io.StringIO())
        tracer = Tracer()
        with use_tracer(tracer), use_progress(rep):
            ppscan(graph, ScanParams(eps=0.4, mu=3))
        snap = rep.snapshot()
        assert snap["phase"] >= 2  # similarity + later phases
        assert snap["fraction"] == pytest.approx(1.0)
        assert not snap["active"]

    def test_progress_alone_enables_instrumented_path(self):
        # Progress without tracing must still advance (the backends'
        # fast path is skipped when either one is enabled).
        graph = erdos_renyi(120, 600, seed=2)
        rep = ProgressReporter(io.StringIO())
        with use_progress(rep):
            result = ppscan(graph, ScanParams(eps=0.4, mu=3))
        assert rep.snapshot()["phase"] >= 2
        assert result.num_clusters >= 0

    def test_process_backend_supervised_advances_progress(self):
        from repro.parallel import ProcessBackend

        graph = erdos_renyi(200, 1200, seed=4)
        rep = ProgressReporter(io.StringIO())
        with use_progress(rep):
            result = ppscan(
                graph,
                ScanParams(eps=0.4, mu=3),
                backend=ProcessBackend(workers=2, supervised=True),
            )
        snap = rep.snapshot()
        assert snap["phase"] >= 1
        assert snap["fraction"] == pytest.approx(1.0)
        assert result.num_clusters >= 0
