"""Batched arc-resolution exactness: the batch intersector's counts match
the merge-count oracle, and :meth:`SimilarityEngine.resolve_arcs` makes
SIM/NSIM decisions bit-identical to every early-terminating scalar kernel
across ε, μ, lane widths and arc-batch shapes."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import complete_graph, from_edges
from repro.graph.generators import chung_lu, erdos_renyi, powerlaw_weights
from repro.intersect import (
    BatchIntersector,
    OpCounter,
    batched_arc_counts,
    concat_ranges,
    merge_count,
)
from repro.intersect.batch import MARK_GROUP_WORK, _segment_sums
from repro.similarity import SimilarityEngine
from repro.types import NSIM, SIM, ScanParams


def oracle_counts(graph, arcs):
    """``|N(src) ∩ N(dst)|`` per arc, via the scalar merge-count kernel."""
    src = graph.arc_source()
    return np.array(
        [
            merge_count(
                graph.neighbors(int(src[a])), graph.neighbors(int(graph.dst[a]))
            )
            for a in arcs
        ],
        dtype=np.int64,
    )


@st.composite
def random_graph(draw, min_n=2, max_n=45):
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    max_edges = n * (n - 1) // 2
    m = draw(st.integers(min_value=0, max_value=min(max_edges, 4 * n)))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    if draw(st.booleans()):
        return erdos_renyi(n, m, seed=seed)
    return chung_lu(powerlaw_weights(n, 2.5), m, seed=seed)


class TestConcatRanges:
    def test_basic(self):
        out = concat_ranges(np.array([0, 7]), np.array([3, 9]))
        assert out.tolist() == [0, 1, 2, 7, 8]

    def test_empty_segments(self):
        out = concat_ranges(np.array([4, 2, 9]), np.array([4, 5, 9]))
        assert out.tolist() == [2, 3, 4]

    def test_all_empty(self):
        assert concat_ranges(np.array([3]), np.array([3])).size == 0
        assert concat_ranges(np.array([], dtype=np.int64),
                             np.array([], dtype=np.int64)).size == 0

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=0, max_value=12),
            ),
            max_size=30,
        )
    )
    def test_matches_python_ranges(self, segs):
        starts = np.array([s for s, _ in segs], dtype=np.int64)
        ends = np.array([s + l for s, l in segs], dtype=np.int64)
        expected = [v for s, l in segs for v in range(s, s + l)]
        assert concat_ranges(starts, ends).tolist() == expected


class TestSegmentSums:
    @given(
        st.lists(st.integers(min_value=0, max_value=9), max_size=25),
    )
    def test_matches_python_sums(self, lens):
        total = sum(lens)
        rng = np.random.default_rng(0)
        hits = rng.integers(0, 2, size=total).astype(bool)
        out = _segment_sums(hits, np.array(lens, dtype=np.int64))
        pos = 0
        expected = []
        for l in lens:
            expected.append(int(hits[pos : pos + l].sum()))
            pos += l
        assert out.tolist() == expected

    def test_zero_length_segments(self):
        hits = np.array([True, False, True, True])
        lens = np.array([0, 2, 0, 2, 0], dtype=np.int64)
        assert _segment_sums(hits, lens).tolist() == [0, 1, 0, 2, 0]

    def test_bool_hits_summed_not_ored(self):
        # np.add.reduceat on a bool array computes logical-or; the helper
        # must force an integer accumulator.
        hits = np.array([True, True, True])
        assert _segment_sums(hits, np.array([3])).tolist() == [3]


class TestBatchIntersector:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(random_graph(), st.integers(min_value=0, max_value=2**31))
    def test_arc_counts_match_oracle(self, graph, seed):
        if graph.num_arcs == 0:
            return
        arcs = np.arange(graph.num_arcs, dtype=np.int64)
        batch = BatchIntersector(graph)
        assert batch.arc_counts(arcs).tolist() == oracle_counts(
            graph, arcs
        ).tolist()

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(random_graph(), st.integers(min_value=0, max_value=2**31))
    def test_unsorted_subset_matches_oracle(self, graph, seed):
        if graph.num_arcs == 0:
            return
        rng = np.random.default_rng(seed)
        size = int(rng.integers(1, graph.num_arcs + 1))
        arcs = rng.permutation(graph.num_arcs)[:size].astype(np.int64)
        got = BatchIntersector(graph).arc_counts(arcs)
        assert got.tolist() == oracle_counts(graph, arcs).tolist()

    @pytest.mark.parametrize("mark_group_work", [0, 1, 4, MARK_GROUP_WORK, 10**9])
    def test_strategy_cutover_is_invisible(self, mark_group_work):
        # Any mark/keyed split must produce the identical exact counts:
        # 0 forces every group through the mark pass, 10**9 forces the
        # single keyed pass, the middle values mix both.
        graph = erdos_renyi(40, 150, seed=7)
        arcs = np.arange(graph.num_arcs, dtype=np.int64)
        batch = BatchIntersector(graph)
        got = batch.arc_counts(arcs, mark_group_work=mark_group_work)
        assert got.tolist() == oracle_counts(graph, arcs).tolist()

    def test_keyed_and_mark_paths_agree(self):
        graph = chung_lu(powerlaw_weights(50, 2.3), 180, seed=3)
        arcs = np.arange(graph.num_arcs, dtype=np.int64)
        batch = BatchIntersector(graph)
        keyed = batch.keyed_counts(arcs)
        src = graph.arc_source()
        marked = np.empty(arcs.size, dtype=np.int64)
        for u in range(graph.num_vertices):
            lo, hi = int(graph.offsets[u]), int(graph.offsets[u + 1])
            marked[lo:hi] = batch.group_counts(u, graph.dst[lo:hi])
        assert keyed.tolist() == marked.tolist()
        assert (src[arcs] >= 0).all()  # sanity: every arc had a source

    def test_empty_batch(self):
        graph = complete_graph(5)
        batch = BatchIntersector(graph)
        empty = np.empty(0, dtype=np.int64)
        assert batch.arc_counts(empty).size == 0
        assert batch.keyed_counts(empty).size == 0
        assert batch.group_counts(0, empty).size == 0

    def test_duplicate_arcs(self):
        graph = erdos_renyi(20, 60, seed=11)
        arcs = np.array([3, 3, 0, 3, 7, 0], dtype=np.int64)
        got = BatchIntersector(graph).arc_counts(arcs)
        assert got.tolist() == oracle_counts(graph, arcs).tolist()

    def test_convenience_wrapper(self):
        graph = complete_graph(6)
        arcs = np.arange(graph.num_arcs, dtype=np.int64)
        assert batched_arc_counts(graph, arcs).tolist() == oracle_counts(
            graph, arcs
        ).tolist()

    def test_counter_charges_invocations_per_arc(self):
        graph = erdos_renyi(30, 90, seed=5)
        arcs = np.arange(graph.num_arcs, dtype=np.int64)
        counter = OpCounter()
        BatchIntersector(graph).arc_counts(arcs, counter=counter)
        assert counter.invocations == graph.num_arcs
        assert counter.vector_ops > 0


class TestResolveArcs:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        random_graph(),
        st.sampled_from([0.1, 0.25, 0.4, 0.5, 0.65, 0.8, 0.95, 1.0]),
        st.integers(min_value=1, max_value=6),
        st.sampled_from(["merge", "pivot", "vectorized"]),
        st.sampled_from([8, 16]),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_bit_identical_to_scalar_kernel(
        self, graph, eps, mu, kernel, lanes, seed
    ):
        if graph.num_arcs == 0:
            return
        params = ScanParams(eps, mu)
        engine = SimilarityEngine(graph, params, kernel=kernel, lanes=lanes)
        rng = np.random.default_rng(seed)
        arcs = rng.permutation(graph.num_arcs).astype(np.int64)
        states = engine.resolve_arcs(arcs)
        # The scalar reference: one early-terminating kernel call per arc,
        # through a fresh engine so op counting cannot interfere.
        ref = SimilarityEngine(graph, params, kernel=kernel, lanes=lanes)
        adj = ref._adj_lists()
        mcn = ref.arc_thresholds()
        src = graph.arc_source()
        for i, a in enumerate(arcs.tolist()):
            expected = (
                SIM
                if ref.kernel(adj[src[a]], adj[graph.dst[a]], int(mcn[a]))
                else NSIM
            )
            assert int(states[i]) == expected

    def test_empty_batch(self):
        graph = complete_graph(4)
        engine = SimilarityEngine(graph, ScanParams(0.5, 2))
        out = engine.resolve_arcs(np.empty(0, dtype=np.int64))
        assert out.size == 0
        assert out.dtype == np.int8

    def test_explicit_mcn_matches_cached_thresholds(self):
        graph = erdos_renyi(25, 80, seed=9)
        engine = SimilarityEngine(graph, ScanParams(0.6, 3))
        arcs = np.arange(graph.num_arcs, dtype=np.int64)
        via_cache = engine.resolve_arcs(arcs)
        via_arg = engine.resolve_arcs(arcs, mcn=engine.arc_thresholds()[arcs])
        assert via_cache.tolist() == via_arg.tolist()

    def test_trivial_predicates_not_charged(self):
        # A path graph at eps=0.1: every threshold is <= 2, so the whole
        # batch resolves from degrees alone with zero kernel invocations.
        graph = from_edges([(0, 1), (1, 2), (2, 3)])
        engine = SimilarityEngine(graph, ScanParams(0.1, 2))
        states = engine.resolve_arcs(np.arange(graph.num_arcs, dtype=np.int64))
        assert (states == SIM).all()
        assert engine.counter.invocations == 0

    def test_route_scalar_prefers_bulk_for_wide_slack(self):
        graph = complete_graph(12)
        engine = SimilarityEngine(graph, ScanParams(0.5, 2))
        routed = engine.route_scalar(
            np.array([11]), np.array([11]), np.array([7])
        )
        assert not bool(routed[0])
