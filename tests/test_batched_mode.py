"""Batched execution mode: ``exec_mode="batched"`` must produce the exact
clustering of the scalar path for every algorithm that supports it, across
kernels, backends, ablations, and parameter grids."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core import assert_same_clustering, ppscan, pscan, scanxp
from repro.core.ppscan import auto_batch_task_threshold, auto_task_threshold
from repro.graph import write_edge_list
from repro.graph.generators import (
    chung_lu,
    erdos_renyi,
    planted_partition,
    powerlaw_weights,
)
from repro.parallel import ProcessBackend, commit_arc_states
from repro.types import ScanParams

PARAM_GRID = [
    ScanParams(0.3, 2),
    ScanParams(0.5, 4),
    ScanParams(0.7, 2),
]


def sample_graphs():
    yield erdos_renyi(60, 240, seed=2)
    yield chung_lu(powerlaw_weights(80, 2.5), 300, seed=5)
    yield planted_partition(4, 18, 0.5, 0.04, seed=9)[0]


class TestPpscanBatched:
    @pytest.mark.parametrize("params", PARAM_GRID)
    def test_identical_to_scalar(self, params):
        for graph in sample_graphs():
            scalar = ppscan(graph, params)
            batched = ppscan(graph, params, exec_mode="batched")
            assert_same_clustering(scalar, batched)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(prune_phase=False),
            dict(two_phase_clustering=False),
            dict(kernel="merge"),
            dict(kernel="pivot"),
            dict(lanes=8),
            dict(task_threshold=16),
        ],
    )
    def test_ablations_identical(self, kwargs):
        graph = erdos_renyi(50, 200, seed=3)
        params = ScanParams(0.45, 3)
        scalar = ppscan(graph, params, **kwargs)
        batched = ppscan(graph, params, exec_mode="batched", **kwargs)
        assert_same_clustering(scalar, batched)

    def test_process_backend(self):
        graph = erdos_renyi(60, 260, seed=4)
        params = ScanParams(0.5, 3)
        scalar = ppscan(graph, params)
        batched = ppscan(
            graph, params, exec_mode="batched", backend=ProcessBackend(workers=2)
        )
        assert_same_clustering(scalar, batched)

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=0, max_value=140),
        st.integers(min_value=0, max_value=2**31),
        st.sampled_from([0.25, 0.5, 0.75]),
        st.integers(min_value=1, max_value=5),
    )
    def test_property_identical(self, n, m, seed, eps, mu):
        graph = erdos_renyi(n, min(m, n * (n - 1) // 2), seed=seed)
        params = ScanParams(eps, mu)
        assert_same_clustering(
            ppscan(graph, params),
            ppscan(graph, params, exec_mode="batched"),
        )

    def test_unknown_mode_rejected(self):
        graph = erdos_renyi(10, 20, seed=1)
        with pytest.raises(ValueError, match="exec_mode"):
            ppscan(graph, ScanParams(0.5, 2), exec_mode="simd")

    def test_work_accounting_populated(self):
        graph = erdos_renyi(60, 240, seed=8)
        result = ppscan(graph, ScanParams(0.4, 3), exec_mode="batched")
        total = result.record.total()
        assert result.record.compsim_invocations > 0
        assert total.vector_ops > 0
        # Stage structure is preserved: the batched mode reports the same
        # seven ppSCAN phases the scalar mode does.
        assert len(result.record.stages) == len(
            ppscan(graph, ScanParams(0.4, 3)).record.stages
        )


class TestPscanBatched:
    @pytest.mark.parametrize("use_ed_order", [True, False])
    def test_identical_to_scalar(self, use_ed_order):
        for graph in sample_graphs():
            params = ScanParams(0.5, 3)
            scalar = pscan(graph, params, use_ed_order=use_ed_order)
            batched = pscan(
                graph, params, use_ed_order=use_ed_order, exec_mode="batched"
            )
            assert_same_clustering(scalar, batched)

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=0, max_value=140),
        st.integers(min_value=0, max_value=2**31),
        st.sampled_from([0.25, 0.5, 0.75]),
        st.integers(min_value=1, max_value=5),
    )
    def test_property_identical(self, n, m, seed, eps, mu):
        graph = erdos_renyi(n, min(m, n * (n - 1) // 2), seed=seed)
        params = ScanParams(eps, mu)
        assert_same_clustering(
            pscan(graph, params),
            pscan(graph, params, exec_mode="batched"),
        )

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="exec_mode"):
            pscan(erdos_renyi(10, 20, seed=1), ScanParams(0.5, 2),
                  exec_mode="turbo")


class TestScanxpBatched:
    @pytest.mark.parametrize("params", PARAM_GRID)
    def test_identical_to_scalar(self, params):
        for graph in sample_graphs():
            scalar = scanxp(graph, params)
            batched = scanxp(graph, params, exec_mode="batched")
            assert_same_clustering(scalar, batched)

    def test_process_backend(self):
        graph = erdos_renyi(60, 260, seed=6)
        params = ScanParams(0.5, 3)
        assert_same_clustering(
            scanxp(graph, params),
            scanxp(
                graph,
                params,
                exec_mode="batched",
                backend=ProcessBackend(workers=2),
            ),
        )

    def test_workload_stays_eps_independent(self):
        # SCAN-XP's defining property: every arc is fully counted, so the
        # invocation count must not depend on eps — batched included.
        graph = erdos_renyi(50, 200, seed=7)
        runs = [
            scanxp(graph, ScanParams(eps, 3), exec_mode="batched")
            for eps in (0.2, 0.5, 0.8)
        ]
        invocations = {r.record.compsim_invocations for r in runs}
        assert len(invocations) == 1
        assert invocations.pop() == graph.num_arcs


class TestBatchedSupport:
    def test_auto_batch_threshold_coarser_than_scalar(self):
        for num_arcs in (100, 10_000, 1_000_000, 100_000_000):
            assert auto_batch_task_threshold(num_arcs) >= auto_task_threshold(
                num_arcs
            )
        assert auto_batch_task_threshold(10**9) == 32768

    def test_commit_arc_states_mirrors(self):
        sim = np.zeros(6, dtype=np.int8)
        rev = np.array([3, 4, 5, 0, 1, 2], dtype=np.int64)
        arcs = np.array([0, 2], dtype=np.int64)
        states = np.array([1, 2], dtype=np.int8)
        commit_arc_states(sim, rev, arcs, states)
        assert sim.tolist() == [1, 0, 2, 1, 0, 2]

    def test_commit_arc_states_empty(self):
        sim = np.zeros(4, dtype=np.int8)
        commit_arc_states(
            sim,
            np.arange(4),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int8),
        )
        assert sim.tolist() == [0, 0, 0, 0]


class TestCliExecMode:
    @pytest.fixture
    def graph_file(self, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(erdos_renyi(40, 160, seed=1), path)
        return str(path)

    @pytest.mark.parametrize("algo", ["ppscan", "pscan", "scanxp"])
    def test_batched_flag(self, graph_file, capsys, algo):
        assert (
            main(
                [
                    "cluster",
                    graph_file,
                    "--algorithm",
                    algo,
                    "--exec-mode",
                    "batched",
                ]
            )
            == 0
        )
        assert "clusters" in capsys.readouterr().out

    def test_batched_matches_scalar_output(self, graph_file, capsys):
        main(["cluster", graph_file, "--eps", "0.4", "--mu", "2"])
        scalar_out = capsys.readouterr().out
        main(
            [
                "cluster",
                graph_file,
                "--eps",
                "0.4",
                "--mu",
                "2",
                "--exec-mode",
                "batched",
            ]
        )
        batched_out = capsys.readouterr().out
        pick = lambda text: [
            line for line in text.splitlines() if line.startswith("cores=")
        ]
        assert pick(scalar_out) == pick(batched_out)

    def test_ignored_for_unsupported_algorithm(self, graph_file, capsys):
        assert (
            main(
                [
                    "cluster",
                    graph_file,
                    "--algorithm",
                    "anyscan",
                    "--exec-mode",
                    "batched",
                ]
            )
            == 0
        )
        assert "ignored" in capsys.readouterr().err
