"""ClusteringResult: membership, classification, canonical comparison."""

import numpy as np
import pytest

from repro.core import ClusteringResult
from repro.graph import from_edges
from repro.types import CORE, HUB, NONCORE, OUTLIER, ScanParams


def make_result(roles, labels, pairs, params=ScanParams(0.5, 2)):
    return ClusteringResult(
        algorithm="test",
        params=params,
        roles=np.array(roles, dtype=np.int8),
        core_labels=np.array(labels, dtype=np.int64),
        noncore_pairs=np.array(pairs, dtype=np.int64).reshape(-1, 2),
    )


class TestBasics:
    def test_counts(self):
        r = make_result(
            [CORE, CORE, NONCORE, NONCORE],
            [0, 0, -1, -1],
            [(0, 2)],
        )
        assert r.num_vertices == 4
        assert r.num_cores == 2
        assert r.num_clusters == 1
        assert r.cluster_ids.tolist() == [0]

    def test_clusters_members_sorted_unique(self):
        r = make_result(
            [CORE, CORE, NONCORE],
            [0, 0, -1],
            [(0, 2), (0, 2)],  # duplicate pair collapses
        )
        clusters = r.clusters()
        assert clusters[0].tolist() == [0, 1, 2]

    def test_membership_multi_cluster_noncore(self):
        r = make_result(
            [CORE, NONCORE, CORE],
            [0, -1, 2],
            [(0, 1), (2, 1)],
        )
        member = r.membership()
        assert member[1] == {0, 2}
        assert member[0] == {0}

    def test_pairs_canonicalized(self):
        a = make_result([CORE, NONCORE], [0, -1], [(0, 1)])
        b = make_result([CORE, NONCORE], [0, -1], [(0, 1), (0, 1)])
        assert a.same_clustering(b)

    def test_different_roles_differ(self):
        a = make_result([CORE, NONCORE], [0, -1], [])
        b = make_result([NONCORE, CORE], [-1, 1], [])
        assert not a.same_clustering(b)

    def test_summary_mentions_algorithm(self):
        r = make_result([CORE], [0], [])
        assert "test" in r.summary()


class TestClassification:
    def test_outlier_no_clustered_neighbors(self):
        g = from_edges([(0, 1), (1, 2), (0, 2), (2, 3)], num_vertices=5)
        r = make_result(
            [CORE, CORE, CORE, NONCORE, NONCORE],
            [0, 0, 0, -1, -1],
            [],
        )
        out = r.classify(g)
        assert out[3] == OUTLIER  # neighbor 2 is clustered... hub needs two
        assert out[4] == OUTLIER  # isolated

    def test_hub_bridges_two_clusters(self):
        # 6 bridges cluster {0,1,2} and cluster {3,4,5}.
        g = from_edges(
            [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (6, 0), (6, 3)]
        )
        r = make_result(
            [CORE] * 6 + [NONCORE],
            [0, 0, 0, 3, 3, 3, -1],
            [],
        )
        out = r.classify(g)
        assert out[6] == HUB

    def test_not_hub_single_cluster_neighbors(self):
        g = from_edges([(0, 1), (1, 2), (0, 2), (3, 0), (3, 1)])
        r = make_result(
            [CORE, CORE, CORE, NONCORE],
            [0, 0, 0, -1],
            [],
        )
        assert r.classify(g)[3] == OUTLIER

    def test_hub_via_multi_membership_neighbor(self):
        # One neighbor in {0}, another in {0, 5}: bridging is possible.
        g = from_edges([(7, 1), (7, 2)], num_vertices=8)
        r = make_result(
            [CORE, NONCORE, NONCORE, NONCORE, NONCORE, CORE, NONCORE, NONCORE],
            [0, -1, -1, -1, -1, 5, -1, -1],
            [(0, 1), (0, 2), (5, 2)],
        )
        assert r.classify(g)[7] == HUB

    def test_member_noncore_stays_noncore(self):
        g = from_edges([(0, 1)])
        r = make_result([CORE, NONCORE], [0, -1], [(0, 1)])
        out = r.classify(g)
        assert out[0] == CORE
        assert out[1] == NONCORE

    def test_graph_size_mismatch(self):
        g = from_edges([(0, 1)])
        r = make_result([CORE], [0], [])
        with pytest.raises(ValueError):
            r.classify(g)
