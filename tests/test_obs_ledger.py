"""Run ledger: durability, keying, history queries, legacy migration."""

import json

import pytest

from repro.core.ppscan import ppscan
from repro.graph.generators import erdos_renyi
from repro.obs import (
    LEDGER_SCHEMA,
    RunLedger,
    Tracer,
    build_record,
    migrate_trajectory,
    record_from_run,
    stable_key,
    use_tracer,
)
from repro.obs.ledger import migrate_legacy_line
from repro.options import ExecutionOptions
from repro.parallel import CRASH_EXIT_CODE, ProcessCrashPoint
from repro.types import ScanParams


def make_record(wall=1.0, graph="g", gate=None):
    extra = {"gate": gate} if gate is not None else None
    return build_record(
        "cluster",
        workload={"graph": graph, "eps": 0.5, "mu": 3},
        options={"backend": "serial"},
        wall_seconds=wall,
        stage_walls={"similarity": wall * 0.7, "cores": wall * 0.3},
        metrics={"arcs": 100, "cache.hit": 3},
        extra=extra,
    )


class TestStableKey:
    def test_deterministic_and_order_independent(self):
        a = stable_key({"x": 1, "y": [2, 3]})
        b = stable_key({"y": [2, 3], "x": 1})
        assert a == b
        assert stable_key({"x": 1}) != stable_key({"x": 2})

    def test_workload_and_options_keys_stamped(self):
        rec = make_record()
        assert rec["workload_key"] == stable_key(
            {"kind": "cluster", **rec["workload"]}
        )
        assert rec["options_key"] == stable_key(rec["options"])

    def test_same_workload_same_key_across_builds(self):
        assert make_record(1.0)["workload_key"] == make_record(2.0)[
            "workload_key"
        ]


class TestAppendRead:
    def test_round_trip(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        sealed = ledger.append(make_record(1.5))
        assert sealed["seq"] == 1 and "crc" in sealed
        (read,) = ledger.read()
        assert read == sealed
        assert read["schema"] == LEDGER_SCHEMA
        assert read["wall_seconds"] == 1.5
        assert ledger.manifest_status() == "ok"

    def test_directory_path_uses_default_names(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(make_record())
        assert (tmp_path / "ledger.jsonl").exists()
        assert (tmp_path / "manifest.json").exists()
        assert ledger.path == tmp_path / "ledger.jsonl"

    def test_seq_monotone_across_instances(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        RunLedger(path).append(make_record())
        sealed = RunLedger(path).append(make_record())
        assert sealed["seq"] == 2

    def test_records_are_one_json_line_each(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.append(make_record(1.0))
        ledger.append(make_record(2.0))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line) for line in lines)


class TestTornTail:
    def test_torn_line_is_clean_skip(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.append(make_record(1.0))
        ledger.append(make_record(2.0))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"torn": tr')  # no newline: a torn tail
        fresh = RunLedger(path)
        assert len(fresh.read()) == 2
        assert fresh.last_skipped == 1
        assert fresh.manifest_status() == "stale"

    def test_append_after_torn_tail_repairs(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.append(make_record(1.0))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"torn": tr')
        fresh = RunLedger(path)
        sealed = fresh.append(make_record(3.0))
        records = fresh.read()
        assert [r["wall_seconds"] for r in records] == [1.0, 3.0]
        assert sealed == records[-1]
        assert fresh.manifest_status() == "ok"

    def test_crc_mismatch_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        sealed = ledger.append(make_record(1.0))
        tampered = dict(sealed, wall_seconds=99.0)  # crc now wrong
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(tampered, sort_keys=True) + "\n")
        fresh = RunLedger(path)
        assert [r["wall_seconds"] for r in fresh.read()] == [1.0]
        assert fresh.last_skipped == 1


class SimulatedCrash(BaseException):
    pass


def crasher(fired):
    def die(code):
        fired.append(code)
        raise SimulatedCrash

    return die


class TestCrashDurability:
    """Ledger appends survive a process kill mid-write (chaos harness)."""

    def test_crash_before_save_loses_only_the_new_record(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        fired = []
        ledger = RunLedger(
            path,
            crash_point=ProcessCrashPoint(
                epoch=3, mode="before-save", exit_fn=crasher(fired)
            ),
        )
        ledger.append(make_record(1.0))
        ledger.append(make_record(2.0))
        with pytest.raises(SimulatedCrash):
            ledger.append(make_record(3.0))
        assert fired == [CRASH_EXIT_CODE]
        # The torn prefix of record 3 is a clean skip on recovery.
        recovered = RunLedger(path)
        assert [r["wall_seconds"] for r in recovered.read()] == [1.0, 2.0]
        sealed = recovered.append(make_record(4.0))
        assert sealed["seq"] == 3  # seq counts valid records, not lines
        assert [r["wall_seconds"] for r in recovered.read()] == [
            1.0,
            2.0,
            4.0,
        ]
        assert recovered.manifest_status() == "ok"

    def test_crash_after_save_keeps_the_record(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        fired = []
        ledger = RunLedger(
            path,
            crash_point=ProcessCrashPoint(
                epoch=2, mode="after-save", exit_fn=crasher(fired)
            ),
        )
        ledger.append(make_record(1.0))
        with pytest.raises(SimulatedCrash):
            ledger.append(make_record(2.0))
        assert fired == [CRASH_EXIT_CODE]
        recovered = RunLedger(path)
        assert [r["wall_seconds"] for r in recovered.read()] == [1.0, 2.0]


class TestHistory:
    def _seed(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append(make_record(1.0, graph="a"))
        ledger.append(make_record(1.1, graph="a"))
        ledger.append(make_record(9.0, graph="a", gate={"passed": False}))
        ledger.append(make_record(5.0, graph="b"))
        return ledger

    def test_filters_by_workload_key(self, tmp_path):
        ledger = self._seed(tmp_path)
        key = make_record(graph="a")["workload_key"]
        walls = [
            r["wall_seconds"] for r in ledger.history(workload_key=key)
        ]
        assert walls == [1.0, 1.1]  # gate-failed 9.0 excluded

    def test_passed_only_false_includes_failures(self, tmp_path):
        ledger = self._seed(tmp_path)
        key = make_record(graph="a")["workload_key"]
        walls = [
            r["wall_seconds"]
            for r in ledger.history(workload_key=key, passed_only=False)
        ]
        assert walls == [1.0, 1.1, 9.0]

    def test_limit_keeps_newest(self, tmp_path):
        ledger = self._seed(tmp_path)
        key = make_record(graph="a")["workload_key"]
        walls = [
            r["wall_seconds"]
            for r in ledger.history(workload_key=key, limit=1)
        ]
        assert walls == [1.1]

    def test_kind_filter(self, tmp_path):
        ledger = self._seed(tmp_path)
        assert ledger.history(kind="bench") == []
        assert len(ledger.history(kind="cluster", passed_only=False)) == 4


class TestRecordFromRun:
    def test_real_run_populates_every_block(self):
        graph = erdos_renyi(80, 320, seed=3)
        params = ScanParams(eps=0.4, mu=3)
        tracer = Tracer()
        with use_tracer(tracer):
            result = ppscan(graph, params)
        tracer.metrics.ingest_record(result.record)
        record = record_from_run(
            "cluster",
            graph=graph,
            graph_label="er80",
            params=params,
            options=ExecutionOptions(),
            result=result,
            tracer=tracer,
        )
        assert record["kind"] == "cluster"
        assert record["workload"]["graph"] == "er80"
        assert record["workload"]["num_vertices"] == 80
        assert "graph_fingerprint" in record["workload"]
        assert record["workload"]["eps"] == pytest.approx(0.4)
        assert record["options"]["backend"] == "serial"
        assert record["algorithm"] == result.record.algorithm
        assert record["wall_seconds"] == pytest.approx(
            result.record.wall_seconds
        )
        assert set(record["stage_walls"]) == {
            s.name for s in result.record.stages
        }
        assert record["metrics"]  # ingested op counters
        assert record["memory"]["parent_peak_rss_kb"] > 0

    def test_same_graph_same_workload_key(self):
        graph = erdos_renyi(40, 120, seed=5)
        params = ScanParams(eps=0.5, mu=2)
        keys = {
            record_from_run(
                "cluster", graph=graph, params=params
            )["workload_key"]
            for _ in range(2)
        }
        assert len(keys) == 1


class TestLegacyMigration:
    LEGACY = {
        "bench": "sketch_accuracy",
        "recorded_unix": 1786165123,
        "workload": "twitter-standin-s6",
        "exact_scanxp_seconds": 10.9551,
        "conservative_speedup": 11.43,
        "best_aggressive": {"config": "b2048", "speedup": 13.09, "ari": 1.0},
    }

    def test_legacy_line_wrapped(self):
        record = migrate_legacy_line(self.LEGACY)
        assert record["kind"] == "bench"
        assert record["workload"] == {
            "bench": "sketch_accuracy",
            "workload": "twitter-standin-s6",
        }
        assert record["metrics"]["conservative_speedup"] == 11.43
        assert record["metrics"]["best_aggressive.speedup"] == 13.09
        assert not any("recorded_unix" in k for k in record["metrics"])
        assert record["legacy"] == self.LEGACY
        assert record["ts_unix"] == 1786165123

    def test_migrate_trajectory_in_place(self, tmp_path):
        path = tmp_path / "trajectory.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(self.LEGACY) + "\n")
            fh.write("not json at all\n")
        ledger = migrate_trajectory(path)
        (record,) = ledger.read()
        assert record["workload"]["bench"] == "sketch_accuracy"
        assert record["seq"] == 1 and "crc" in record
        # Idempotent: a second migration leaves the bytes alone.
        before = path.read_bytes()
        migrate_trajectory(path)
        assert path.read_bytes() == before

    def test_migrated_and_fresh_records_share_workload_key(self, tmp_path):
        path = tmp_path / "trajectory.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(self.LEGACY) + "\n")
        ledger = migrate_trajectory(path)
        fresh = ledger.append(
            migrate_legacy_line(dict(self.LEGACY, conservative_speedup=12.0))
        )
        old, new = ledger.read()
        assert old["workload_key"] == new["workload_key"]
        assert fresh["seq"] == 2
