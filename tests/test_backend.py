"""Execution backends: serial vs process, write/commit protocol."""

import pytest

from repro.metrics import TaskCost
from repro.parallel import ProcessBackend, SerialBackend


def make_square_task(results: list):
    def run_task(beg, end):
        writes = [(i, i * i) for i in range(beg, end)]
        return writes, TaskCost(arcs=end - beg)

    def commit(writes):
        results.extend(writes)

    return run_task, commit


class TestSerialBackend:
    def test_runs_in_order_and_commits(self):
        results = []
        run_task, commit = make_square_task(results)
        records = SerialBackend().run_phase(
            [(0, 3), (3, 5)], run_task, commit
        )
        assert results == [(i, i * i) for i in range(5)]
        assert [r.arcs for r in records] == [3, 2]

    def test_commit_interleaves_with_tasks(self):
        """Serial backend commits task N before running task N+1."""
        seen_at_start = []
        state = []

        def run_task(beg, end):
            seen_at_start.append(len(state))
            return list(range(beg, end)), TaskCost()

        def commit(writes):
            state.extend(writes)

        SerialBackend().run_phase([(0, 2), (2, 4)], run_task, commit)
        assert seen_at_start == [0, 2]

    def test_empty_phase(self):
        assert SerialBackend().run_phase([], lambda b, e: None, lambda w: None) == []


class TestProcessBackend:
    def test_same_results_as_serial(self):
        serial_results, proc_results = [], []
        run_s, commit_s = make_square_task(serial_results)
        run_p, commit_p = make_square_task(proc_results)
        tasks = [(0, 4), (4, 8), (8, 12)]
        SerialBackend().run_phase(tasks, run_s, commit_s)
        ProcessBackend(workers=2).run_phase(tasks, run_p, commit_p)
        assert sorted(serial_results) == sorted(proc_results)

    def test_bulk_synchronous_commits(self):
        """Process backend defers all commits to the phase barrier: no task
        observes another task's writes."""
        state = []
        observed = []

        def run_task(beg, end):
            observed.append(len(state))
            return list(range(beg, end)), TaskCost()

        def commit(writes):
            state.extend(writes)

        # workers=1 path still applies BSP semantics.
        ProcessBackend(workers=1).run_phase(
            [(0, 2), (2, 4), (4, 6)], run_task, commit
        )
        assert observed == [0, 0, 0]
        assert len(state) == 6

    def test_records_preserved_per_task(self):
        def run_task(beg, end):
            return None, TaskCost(scalar_cmp=end - beg)

        records = ProcessBackend(workers=2).run_phase(
            [(0, 5), (5, 7)], run_task, lambda w: None
        )
        assert [r.scalar_cmp for r in records] == [5, 2]

    def test_single_task_runs_inline(self):
        records = ProcessBackend(workers=4).run_phase(
            [(0, 3)], lambda b, e: (None, TaskCost(arcs=e - b)), lambda w: None
        )
        assert records[0].arcs == 3

    def test_default_workers_positive(self):
        assert ProcessBackend().workers >= 1

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ProcessBackend(workers=0)
