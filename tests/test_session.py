"""The session-handle API: bind a graph once, query it many times.

Covers :class:`repro.api.Session` / :class:`repro.api.GraphHandle`:
index-backed queries bit-identical to the one-shot facade, per-point
memoization (with hit/miss accounting and the never-computing
:meth:`lookup` peek), vertex views, sweeps through the handle, the
store plumbing between session and handle, and handle statistics the
service registry budgets with.
"""

from __future__ import annotations

import warnings

import pytest

from repro import api
from repro.cache import SimilarityStore, graph_fingerprint
from repro.core import assert_same_clustering
from repro.graph.generators import erdos_renyi, planted_partition
from repro.options import ExecutionOptions
from repro.types import ScanParams


@pytest.fixture(scope="module")
def graph():
    return planted_partition(6, 30, 0.7, 0.05, seed=5)[0]


@pytest.fixture
def handle(graph):
    return api.open(graph)


PARAMS = ScanParams(0.5, 3)


class TestGraphHandle:
    def test_open_returns_handle(self, graph):
        handle = api.open(graph)
        assert isinstance(handle, api.GraphHandle)
        assert handle.graph is graph
        assert handle.fingerprint == graph_fingerprint(graph)

    def test_cluster_bit_identical_to_facade(self, graph, handle):
        direct = api.cluster(graph, PARAMS)
        via_handle = handle.cluster(PARAMS)
        assert_same_clustering(direct, via_handle)

    def test_cluster_accepts_eps_mu_pair(self, graph, handle):
        assert_same_clustering(
            handle.cluster(0.5, 3), api.cluster(graph, PARAMS)
        )

    def test_repeat_query_is_memoized(self, handle):
        first = handle.cluster(PARAMS)
        second = handle.cluster(PARAMS)
        assert second is first
        assert handle.query_hits == 1
        assert handle.query_misses == 1

    def test_lookup_never_computes(self, graph):
        handle = api.open(graph)
        assert handle.lookup(PARAMS) is None
        result = handle.cluster(PARAMS)
        assert handle.lookup(PARAMS) is result

    def test_distinct_points_are_distinct_queries(self, handle):
        handle.cluster(0.4, 2)
        handle.cluster(0.6, 2)
        assert handle.query_misses == 2
        assert handle.query_hits == 0

    def test_explicit_algorithm_bypasses_index(self, graph, handle):
        via_algo = handle.cluster(PARAMS, algorithm="pscan")
        assert_same_clustering(via_algo, api.cluster(graph, PARAMS))
        # algorithm-path results are not the index memo
        assert handle.query_misses == 0

    def test_index_grid_matches_facade(self, graph, handle):
        for eps in (0.3, 0.5, 0.7):
            for mu in (2, 4):
                assert_same_clustering(
                    handle.cluster(eps, mu),
                    api.cluster(graph, ScanParams(eps, mu)),
                )

    def test_vertex_view(self, graph, handle):
        result = handle.cluster(PARAMS)
        membership = result.membership()
        for v in range(0, graph.num_vertices, 7):
            view = handle.vertex(v, PARAMS)
            assert view.vertex == v
            assert view.role in {"core", "noncore", "hub", "outlier"}
            assert view.clusters == tuple(sorted(membership[v]))
            as_dict = view.as_dict()
            assert as_dict["vertex"] == v
            assert as_dict["role"] == view.role

    def test_vertex_range_validated(self, graph, handle):
        with pytest.raises(ValueError, match="out of range"):
            handle.vertex(graph.num_vertices, PARAMS)
        with pytest.raises(ValueError, match="out of range"):
            handle.vertex(-1, PARAMS)

    def test_sweep_through_handle(self, graph, handle):
        outcome = handle.sweep([0.4, 0.6], [2, 3])
        assert len(outcome.points) == 4
        for point in outcome.points:
            assert_same_clustering(
                point.result,
                api.cluster(graph, ScanParams(point.eps, point.mu)),
            )

    def test_stats_shape(self, handle):
        handle.cluster(PARAMS)
        stats = handle.stats()
        assert stats["fingerprint"] == handle.fingerprint
        assert stats["indexed"] is True
        assert stats["points_cached"] == 1
        assert stats["num_vertices"] == handle.graph.num_vertices
        assert stats["memory_bytes"] > 0

    def test_memory_grows_with_index(self, graph):
        handle = api.open(graph)
        cold = handle.memory_bytes()
        handle.ensure_index()
        assert handle.memory_bytes() > cold

    def test_close_releases_memos(self, handle):
        handle.cluster(PARAMS)
        handle.close()
        assert handle.lookup(PARAMS) is None
        assert not handle.indexed


class TestSession:
    def test_open_is_memoized_per_graph(self, graph):
        session = api.Session()
        assert session.open(graph) is session.open(graph)

    def test_handles_and_discard(self, graph):
        session = api.Session()
        handle = session.open(graph)
        assert session.handles() == [handle]
        session.discard(handle)
        assert session.handles() == []
        assert session.open(graph) is not handle

    def test_context_manager_closes(self, graph):
        with api.Session() as session:
            handle = session.open(graph)
            handle.cluster(PARAMS)
        assert session.handles() == []

    def test_shared_store_warms_across_handles(self, tmp_path):
        g = erdos_renyi(60, 240, seed=3)
        store = SimilarityStore(cache_dir=tmp_path)
        with api.Session(store=store) as session:
            session.open(g).cluster(PARAMS)
        assert store.stats().misses > 0
        spilled = list(tmp_path.glob("simstore-*.npz"))
        assert spilled, "session close must spill the shared store"

    def test_cache_dir_builds_store(self, tmp_path, graph):
        session = api.Session(cache_dir=tmp_path)
        assert session.store is not None
        assert session.store.cache_dir == tmp_path

    def test_no_store_by_default(self, graph):
        # The historic facade behavior: an unconfigured one-shot call
        # runs uncached, so Session must not invent a store.
        assert api.Session().store is None

    def test_options_cache_adopted(self, graph):
        store = SimilarityStore()
        session = api.Session(options=ExecutionOptions(cache=store))
        assert session.store is store


class TestFacadeIsThinWrapper:
    """The module-level entry points are one-shot sessions now."""

    def test_cluster_unchanged(self, graph):
        a = api.cluster(graph, PARAMS)
        b = api.cluster(graph, PARAMS, algorithm="scan")
        assert_same_clustering(a, b)

    def test_typed_path_emits_no_warning(self, graph):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            api.cluster(graph, PARAMS, options=ExecutionOptions())

    def test_compare_still_agrees(self, graph):
        outcome = api.compare(graph, PARAMS, algorithms=["scan", "ppscan"])
        assert set(outcome.results) == {"scan", "ppscan"}

    def test_sweep_still_works(self, graph):
        outcome = api.sweep(graph, [0.4, 0.6], [2])
        assert len(outcome.points) == 2


class TestApplyUpdates:
    """Streaming mutation through the handle: re-stamp + warm serving."""

    def test_restamps_fingerprint_and_graph(self, graph):
        handle = api.open(graph)
        old_fp = handle.fingerprint
        report = handle.apply_updates([("+", 0, graph.num_vertices - 1)])
        assert report.effective == 1
        assert handle.fingerprint == report.fingerprint != old_fp
        assert handle.graph is not graph
        assert handle.graph.num_edges == graph.num_edges + 1
        assert handle.fingerprint == graph_fingerprint(handle.graph)
        assert handle.batches_applied == 1
        assert handle.stats()["streaming"] is True

    def test_warm_points_survive_updates_bit_identically(self, graph):
        handle = api.open(graph)
        handle.cluster(PARAMS)
        handle.apply_updates(
            {"insert": [[0, graph.num_vertices - 1]], "remove": []}
        )
        warm = handle.lookup(PARAMS)
        assert warm is not None, "materialized point must stay warm"
        assert_same_clustering(warm, api.cluster(handle.graph, PARAMS))
        assert handle.cluster(PARAMS) is warm

    def test_queries_after_update_use_stream(self, graph):
        handle = api.open(graph)
        handle.apply_updates([("+", 0, graph.num_vertices - 1)])
        fresh = ScanParams(0.45, 2)
        assert handle.lookup(fresh) is None
        assert_same_clustering(
            handle.cluster(fresh), api.cluster(handle.graph, fresh)
        )

    def test_rejected_update_leaves_handle_intact(self, graph):
        handle = api.open(graph)
        before = handle.cluster(PARAMS)
        fp = handle.fingerprint
        with pytest.raises(IndexError):
            handle.apply_updates([("+", 0, 10_000)])
        assert handle.fingerprint == fp
        assert handle.lookup(PARAMS) is before

    def test_session_discard_after_updates(self, graph):
        session = api.Session()
        handle = session.open(graph)
        handle.apply_updates([("+", 0, graph.num_vertices - 1)])
        assert handle in session.handles()
        session.discard(handle)
        assert handle not in session.handles()
        assert handle.stats()["streaming"] is False

    def test_store_follows_the_stream(self, graph):
        store = SimilarityStore()
        session = api.Session(store=store)
        handle = session.open(graph)
        handle.cluster(PARAMS)
        old_fp = handle.fingerprint
        handle.apply_updates([("+", 0, graph.num_vertices - 1)])
        assert store.peek(old_fp) is None
        assert store.peek(handle.fingerprint) is not None
