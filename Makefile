# Convenience targets for the ppSCAN reproduction.

PYTHON ?= python
SCALE ?= 0.4

.PHONY: install test bench bench-full examples clean

install:
	$(PYTHON) -m pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	REPRO_SCALE=$(SCALE) $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_SCALE=1.0 $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks bench_results
	find . -name __pycache__ -type d -exec rm -rf {} +
